#include "core/weighted.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/assert.hpp"

namespace bwpart::core {

namespace {

void check(std::span<const double> shared, std::span<const double> alone,
           std::span<const double> weights) {
  BWPART_ASSERT(!shared.empty(), "weighted metric over empty workload");
  BWPART_ASSERT(shared.size() == alone.size() &&
                    shared.size() == weights.size(),
                "arity mismatch");
  for (std::size_t i = 0; i < shared.size(); ++i) {
    BWPART_ASSERT(alone[i] > 0.0, "IPC_alone must be positive");
    BWPART_ASSERT(weights[i] > 0.0, "weights must be positive");
  }
}

}  // namespace

double weighted_harmonic_speedup(std::span<const double> ipc_shared,
                                 std::span<const double> ipc_alone,
                                 std::span<const double> weights) {
  check(ipc_shared, ipc_alone, weights);
  double wsum = 0.0, acc = 0.0;
  for (std::size_t i = 0; i < ipc_shared.size(); ++i) {
    BWPART_ASSERT(ipc_shared[i] > 0.0, "weighted Hsp needs positive IPCs");
    wsum += weights[i];
    acc += weights[i] * ipc_alone[i] / ipc_shared[i];
  }
  return wsum / acc;
}

double weighted_weighted_speedup(std::span<const double> ipc_shared,
                                 std::span<const double> ipc_alone,
                                 std::span<const double> weights) {
  check(ipc_shared, ipc_alone, weights);
  double wsum = 0.0, acc = 0.0;
  for (std::size_t i = 0; i < ipc_shared.size(); ++i) {
    wsum += weights[i];
    acc += weights[i] * ipc_shared[i] / ipc_alone[i];
  }
  return acc / wsum;
}

double weighted_ipc_sum(std::span<const double> ipc_shared,
                        std::span<const double> weights) {
  BWPART_ASSERT(ipc_shared.size() == weights.size(), "arity mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < ipc_shared.size(); ++i) {
    acc += weights[i] * ipc_shared[i];
  }
  return acc;
}

double weighted_min_fairness(std::span<const double> ipc_shared,
                             std::span<const double> ipc_alone,
                             std::span<const double> weights) {
  check(ipc_shared, ipc_alone, weights);
  double wsum = 0.0;
  double worst = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < ipc_shared.size(); ++i) {
    wsum += weights[i];
    worst = std::min(worst,
                     ipc_shared[i] / ipc_alone[i] / weights[i]);
  }
  return wsum * worst;
}

double evaluate_weighted_metric(Metric m, std::span<const double> ipc_shared,
                                std::span<const double> ipc_alone,
                                std::span<const double> weights) {
  switch (m) {
    case Metric::HarmonicWeightedSpeedup:
      return weighted_harmonic_speedup(ipc_shared, ipc_alone, weights);
    case Metric::MinFairness:
      return weighted_min_fairness(ipc_shared, ipc_alone, weights);
    case Metric::WeightedSpeedup:
      return weighted_weighted_speedup(ipc_shared, ipc_alone, weights);
    case Metric::IpcSum:
      return weighted_ipc_sum(ipc_shared, weights);
  }
  BWPART_ASSERT(false, "unknown metric");
  return 0.0;
}

void weighted_optimal_allocation_into(Metric m,
                                      std::span<const AppParams> apps,
                                      std::span<const double> weights,
                                      double b, std::span<double> out,
                                      SolveWorkspace& ws) {
  BWPART_ASSERT(apps.size() == weights.size(), "arity mismatch");
  BWPART_ASSERT(out.size() == apps.size(), "out arity mismatch");
  BWPART_ASSERT(b > 0.0, "bandwidth must be positive");
  const std::size_t n = apps.size();
  ws.caps.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    BWPART_ASSERT(weights[i] > 0.0, "weights must be positive");
    ws.caps[i] = apps[i].apc_alone;
  }
  switch (m) {
    case Metric::HarmonicWeightedSpeedup: {
      // x_i ∝ sqrt(w_i * APC_alone_i) — Eq. 5 with weight-scaled demand.
      ws.keys.resize(n);
      for (std::size_t i = 0; i < n; ++i) {
        ws.keys[i] = std::sqrt(weights[i] * apps[i].apc_alone);
      }
      ws.flags.resize(n);
      waterfill_into(ws.keys, ws.caps,
                     std::min(b, std::accumulate(ws.caps.begin(),
                                                 ws.caps.end(), 0.0)),
                     out, ws.flags);
      return;
    }
    case Metric::MinFairness: {
      // speedup_i ∝ w_i  =>  x_i ∝ w_i * APC_alone_i.
      ws.keys.resize(n);
      for (std::size_t i = 0; i < n; ++i) {
        ws.keys[i] = weights[i] * apps[i].apc_alone;
      }
      ws.flags.resize(n);
      waterfill_into(ws.keys, ws.caps,
                     std::min(b, std::accumulate(ws.caps.begin(),
                                                 ws.caps.end(), 0.0)),
                     out, ws.flags);
      return;
    }
    case Metric::WeightedSpeedup: {
      ws.keys.resize(n);
      for (std::size_t i = 0; i < n; ++i) {
        ws.keys[i] = weights[i] / apps[i].apc_alone;
      }
      ws.ranks.resize(n);
      ws.order.resize(n);
      ranks_by_key_into(ws.keys, ws.ranks, ws.order, /*descending=*/true);
      knapsack_allocate_into(ws.caps, ws.ranks, b, out, ws.order);
      return;
    }
    case Metric::IpcSum: {
      ws.keys.resize(n);
      for (std::size_t i = 0; i < n; ++i) {
        BWPART_ASSERT(apps[i].api > 0.0, "API must be positive");
        ws.keys[i] = weights[i] / apps[i].api;
      }
      ws.ranks.resize(n);
      ws.order.resize(n);
      ranks_by_key_into(ws.keys, ws.ranks, ws.order, /*descending=*/true);
      knapsack_allocate_into(ws.caps, ws.ranks, b, out, ws.order);
      return;
    }
  }
  BWPART_ASSERT(false, "unknown metric");
}

std::vector<double> weighted_optimal_allocation(
    Metric m, std::span<const AppParams> apps,
    std::span<const double> weights, double b) {
  std::vector<double> alloc(apps.size());
  SolveWorkspace ws;
  weighted_optimal_allocation_into(m, apps, weights, b, alloc, ws);
  return alloc;
}

void weighted_optimal_shares_into(Metric m, std::span<const AppParams> apps,
                                  std::span<const double> weights, double b,
                                  std::span<double> out, SolveWorkspace& ws) {
  weighted_optimal_allocation_into(m, apps, weights, b, out, ws);
  const double sum = std::accumulate(out.begin(), out.end(), 0.0);
  BWPART_ASSERT(sum > 0.0, "weighted optimum allocated nothing");
  for (double& x : out) x /= sum;
}

std::vector<double> weighted_optimal_shares(Metric m,
                                            std::span<const AppParams> apps,
                                            std::span<const double> weights,
                                            double b) {
  std::vector<double> alloc(apps.size());
  SolveWorkspace ws;
  weighted_optimal_shares_into(m, apps, weights, b, alloc, ws);
  return alloc;
}

}  // namespace bwpart::core
