#include "mem/controller.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace bwpart::mem {

MemoryController::MemoryController(const dram::DramConfig& cfg,
                                   Frequency cpu_clock,
                                   std::uint32_t num_apps,
                                   std::unique_ptr<Scheduler> scheduler,
                                   std::size_t per_app_queue_capacity,
                                   dram::MapScheme map,
                                   std::size_t shared_queue_capacity,
                                   AdmissionMode admission)
    : dram_(cfg, map),
      crossing_(cpu_clock, cfg.bus_clock),
      scheduler_(std::move(scheduler)),
      per_app_capacity_(per_app_queue_capacity),
      shared_capacity_(shared_queue_capacity),
      admission_(admission),
      num_apps_(num_apps),
      per_app_count_(num_apps, 0),
      app_stats_(num_apps),
      bank_last_user_(cfg.total_banks(), kNoApp),
      bus_user_(cfg.channels, kNoApp),
      bus_busy_until_(cfg.channels, 0) {
  BWPART_ASSERT(scheduler_ != nullptr, "controller needs a scheduler");
  BWPART_ASSERT(num_apps > 0, "controller needs at least one app");
  BWPART_ASSERT(per_app_queue_capacity > 0, "zero queue capacity");
  queue_.reserve(static_cast<std::size_t>(num_apps) * per_app_queue_capacity);
}

bool MemoryController::can_accept(AppId app) const {
  return can_accept_n(app, 1);
}

bool MemoryController::can_accept_n(AppId app, std::size_t n) const {
  BWPART_ASSERT(app < num_apps_, "app id out of range");
  if (admission_ == AdmissionMode::Shared) {
    return queue_.size() + n <= shared_capacity_;
  }
  return per_app_count_[app] + n <= per_app_capacity_;
}

std::uint64_t MemoryController::enqueue(AppId app, Addr addr, AccessType type,
                                        Cycle now_cpu) {
  BWPART_ASSERT(can_accept(app), "enqueue into full queue");
  MemRequest req;
  req.id = next_req_id_++;
  req.app = app;
  req.addr = addr;
  req.type = type;
  req.loc = dram_.mapper().decode(addr);
  req.arrival_cpu = now_cpu;
  req.arrival_tick = bus_ticks_done_;
  scheduler_->on_enqueue(req, now_cpu);
  queue_.push_back(req);
  ++per_app_count_[app];
  ++app_stats_[app].enqueued;
  if (type == AccessType::Write) {
    ++pending_writes_;
  } else {
    ++pending_reads_;
  }
  return req.id;
}

void MemoryController::set_write_drain(const WriteDrainConfig& cfg) {
  BWPART_ASSERT(!cfg.enabled || cfg.low_watermark < cfg.high_watermark,
                "write-drain watermarks inverted");
  write_drain_ = cfg;
  draining_ = false;
}

void MemoryController::tick(Cycle now_cpu) {
  BWPART_ASSERT(!started_ || now_cpu >= last_cpu_cycle_,
                "controller time must not go backwards");
  started_ = true;
  last_cpu_cycle_ = now_cpu;
  const std::uint64_t target = crossing_.device_ticks_at(now_cpu);
  while (bus_ticks_done_ < target) {
    run_bus_tick(bus_ticks_done_);
    ++bus_ticks_done_;
  }
}

void MemoryController::replace_scheduler(std::unique_ptr<Scheduler> scheduler) {
  BWPART_ASSERT(scheduler != nullptr, "controller needs a scheduler");
  scheduler_ = std::move(scheduler);
}

const AppMemStats& MemoryController::app_stats(AppId app) const {
  BWPART_ASSERT(app < num_apps_, "app id out of range");
  return app_stats_[app];
}

void MemoryController::reset_stats() {
  for (auto& s : app_stats_) s = AppMemStats{};
  dram_.reset_stats();
}

std::size_t MemoryController::pending_requests(AppId app) const {
  BWPART_ASSERT(app < num_apps_, "app id out of range");
  return per_app_count_[app];
}

void MemoryController::run_bus_tick(dram::Tick now) {
  dram_.tick(now);
  deliver_completions(now);
  // Wake powered-down ranks that have work waiting.
  if (dram_.config().enable_powerdown) {
    for (const MemRequest& r : queue_) {
      if (!r.in_flight) {
        dram_.notify_rank_pending(r.loc.channel, r.loc.rank, now);
      }
    }
  }
  // One command per channel per tick (shared command bus per channel).
  issued_scratch_.assign(dram_.config().channels, kNoApp);
  for (std::uint32_t ch = 0; ch < dram_.config().channels; ++ch) {
    if (try_issue_one(ch, now)) {
      issued_scratch_[ch] = issued_app_scratch_;
    }
  }
  if (observer_ != nullptr) {
    // Weight of this bus tick in CPU cycles: exact rational spacing.
    const Cycle weight = crossing_.cpu_cycle_of_tick(now + 1) -
                         crossing_.cpu_cycle_of_tick(now);
    account_interference(now, issued_scratch_, weight);
  }
}

void MemoryController::deliver_completions(dram::Tick now) {
  for (std::size_t i = 0; i < queue_.size();) {
    MemRequest& req = queue_[i];
    if (req.in_flight && req.data_finish <= now) {
      const Cycle done_cpu = crossing_.cpu_cycle_of_tick(req.data_finish);
      AppMemStats& s = app_stats_[req.app];
      if (req.type == AccessType::Read) {
        ++s.served_reads;
      } else {
        ++s.served_writes;
      }
      s.sum_queue_cycles +=
          done_cpu > req.arrival_cpu ? done_cpu - req.arrival_cpu : 0;
      --per_app_count_[req.app];
      const MemRequest done = req;
      queue_[i] = queue_.back();
      queue_.pop_back();
      if (on_complete_) on_complete_(done, done_cpu);
      // re-examine the element swapped into slot i
    } else {
      ++i;
    }
  }
}

bool MemoryController::try_issue_one(std::uint32_t channel, dram::Tick now) {
  // Write-drain hysteresis: hold writes while reads wait, unless the write
  // backlog crossed the high watermark; drain down to the low watermark.
  if (write_drain_.enabled) {
    if (!draining_ && pending_writes_ >= write_drain_.high_watermark) {
      draining_ = true;
    } else if (draining_ && pending_writes_ <= write_drain_.low_watermark) {
      draining_ = false;
    }
  }
  const bool writes_eligible =
      !write_drain_.enabled || draining_ || pending_reads_ == 0;

  // Gather schedulable requests on this channel, policy-ordered.
  scratch_.clear();
  for (std::size_t i = 0; i < queue_.size(); ++i) {
    const MemRequest& r = queue_[i];
    if (!r.in_flight && r.loc.channel == channel && r.arrival_tick <= now &&
        (writes_eligible || r.type == AccessType::Read)) {
      scratch_.push_back(i);
    }
  }
  if (scratch_.empty()) return false;
  std::sort(scratch_.begin(), scratch_.end(),
            [this](std::size_t a, std::size_t b) {
              return scheduler_->before(queue_[a], queue_[b], dram_);
            });
  bool bus_reserved = false;
  for (std::size_t pos = 0; pos < scratch_.size(); ++pos) {
    MemRequest& req = queue_[scratch_[pos]];
    const dram::CommandType need =
        dram_.required_command(req.loc, req.type);
    // Bus reservation: once a higher-priority column command is blocked
    // *only* by data-bus occupancy, lower-priority column commands may not
    // grab the bus (they would push bus-free time out forever — with tRTRS
    // a same-rank stream can otherwise starve a rank-switching request).
    // Non-bus commands (ACT/PRE) still flow.
    if (bus_reserved && dram::is_column_command(need)) continue;
    // Do not close a row that a *higher-priority* waiting request can
    // still use: that request's column command is merely blocked this tick
    // (tCCD/bus), and precharging under it would throw its activation away
    // and churn ACT/PRE pairs. Lower-priority row hits get no such
    // protection — the policy's order must win.
    if (need == dram::CommandType::Precharge) {
      bool protected_row = false;
      for (std::size_t k = 0; k < pos; ++k) {
        const MemRequest& earlier = queue_[scratch_[k]];
        if (earlier.loc.rank == req.loc.rank &&
            earlier.loc.bank == req.loc.bank &&
            dram_.is_row_hit(earlier.loc)) {
          protected_row = true;
          break;
        }
      }
      if (protected_row) continue;
    }
    dram::Command cmd{need, req.loc, req.app, req.id};
    if (!dram_.can_issue(cmd, now)) {
      if (dram::is_column_command(need) &&
          dram_.can_issue_ignoring_bus(cmd, now)) {
        bus_reserved = true;
      }
      continue;
    }
    const dram::IssueResult result = dram_.issue(cmd, now);
    const std::size_t bank_idx =
        (static_cast<std::size_t>(req.loc.channel) * dram_.config().ranks +
         req.loc.rank) *
            dram_.config().banks_per_rank +
        req.loc.bank;
    bank_last_user_[bank_idx] = req.app;
    if (dram::is_column_command(need)) {
      req.in_flight = true;
      req.data_finish = result.data_finish;
      bus_user_[channel] = req.app;
      bus_busy_until_[channel] = result.data_finish;
      if (req.type == AccessType::Write) {
        BWPART_ASSERT(pending_writes_ > 0, "write accounting underflow");
        --pending_writes_;
      } else {
        BWPART_ASSERT(pending_reads_ > 0, "read accounting underflow");
        --pending_reads_;
      }
      scheduler_->on_issue(req);
    }
    issued_app_scratch_ = req.app;
    return true;
  }
  return false;
}

void MemoryController::account_interference(dram::Tick now,
                                            std::span<const AppId> issued_app,
                                            Cycle weight) {
  // For each application with at least one waiting request, examine its
  // oldest waiting request and attribute this tick to interference when the
  // request is delayed by another application's use of the bus or bank
  // (paper Section IV-C; detection per STFM / FST).
  for (AppId app = 0; app < num_apps_; ++app) {
    // Find the oldest non-in-flight request of this app.
    const MemRequest* oldest = nullptr;
    for (const MemRequest& r : queue_) {
      if (r.app != app || r.in_flight) continue;
      if (oldest == nullptr || r.arrival_cpu < oldest->arrival_cpu ||
          (r.arrival_cpu == oldest->arrival_cpu && r.id < oldest->id)) {
        oldest = &r;
      }
    }
    if (oldest == nullptr) continue;
    const std::uint32_t ch = oldest->loc.channel;
    const dram::CommandType need =
        dram_.required_command(oldest->loc, oldest->type);
    const dram::Command cmd{need, oldest->loc, app, oldest->id};
    bool interfered = false;
    if (dram_.can_issue(cmd, now)) {
      // Ready but a different application's command won the slot.
      interfered = issued_app[ch] != kNoApp && issued_app[ch] != app;
    } else if (dram_.refresh_blocked(ch, oldest->loc.rank)) {
      interfered = false;  // refresh is not inter-application interference
    } else {
      // Blocked on a resource: data bus or bank; attribute to its last user.
      const dram::TimingsTicks& t = dram_.timings();
      const bool bus_block =
          dram::is_column_command(need) &&
          now + (dram::is_read_command(need) ? t.cl : t.cwl) <
              bus_busy_until_[ch];
      if (bus_block) {
        interfered = bus_user_[ch] != kNoApp && bus_user_[ch] != app;
      } else {
        const std::size_t bank_idx =
            (static_cast<std::size_t>(ch) * dram_.config().ranks +
             oldest->loc.rank) *
                dram_.config().banks_per_rank +
            oldest->loc.bank;
        const AppId owner = bank_last_user_[bank_idx];
        interfered = owner != kNoApp && owner != app;
      }
    }
    if (interfered) observer_->on_interference(app, weight);
  }
}

}  // namespace bwpart::mem
