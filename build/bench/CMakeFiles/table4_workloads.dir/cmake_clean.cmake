file(REMOVE_RECURSE
  "CMakeFiles/table4_workloads.dir/table4_workloads.cpp.o"
  "CMakeFiles/table4_workloads.dir/table4_workloads.cpp.o.d"
  "table4_workloads"
  "table4_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
