// The snapshot/fork phase-reuse engine's data model and on-disk format.
//
// A scheme sweep re-executes the identical warmup + No_partitioning profile
// phases once per scheme — with the same seed the traces are identical, so
// roughly two thirds of the simulated cycles in a 14-mix x 7-scheme sweep
// are redundant. A ProfileSnapshot captures the complete CmpSystem state at
// the measure-phase boundary (via CmpSystem::save_state) together with the
// profiled AppParams and the measured bandwidth B; Experiment::run_all()
// forks every scheme's measure phase from it. Same contract as the
// fast-forward engine: an optimization, never an approximation — a forked
// measure phase is bit-identical to a straight-through run(scheme), proven
// by tests/property/test_sweep_differential and the tests/golden corpus.
//
// The optional on-disk form ("BWPS", versioned, checksummed) lets an
// interrupted paper-scale sweep resume from the profile checkpoint
// (bwpart_sim --snapshot-out / --resume). Corrupt or truncated files fail
// loudly with snap::SnapshotError; a snapshot only restores into an
// identically configured experiment (config_fp binds machine + workload +
// phases + seed).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/snapshot_io.hpp"
#include "core/app_params.hpp"
#include "workload/spec_table.hpp"

namespace bwpart::harness {

struct SystemConfig;
struct PhaseConfig;

/// Compile-time default for Experiment's snapshot reuse (the CMake option
/// BWPART_SNAPSHOT; ON unless configured otherwise). The snapshot code
/// itself always compiles — OFF only flips run_all()'s default to the
/// straight-through per-scheme path, which CI keeps tested.
#if defined(BWPART_SNAPSHOT)
inline constexpr bool kSnapshotEnabled = true;
#else
inline constexpr bool kSnapshotEnabled = false;
#endif

/// Everything the warmup + profile phases produced, shared by every forked
/// measure phase of a sweep.
struct ProfileSnapshot {
  /// Fingerprint of (machine config, workload, phase config, seed); a
  /// snapshot restores only into an experiment with the same fingerprint.
  std::uint64_t config_fp = 0;
  /// The profiled per-app estimates (online Eq. 12-13, or the oracle).
  std::vector<core::AppParams> params;
  /// Bandwidth utilized during the profile window (the model's B), as
  /// run_qos() would measure it — stored so QoS forks allocate identically.
  double profiled_b = 0.0;
  /// CmpSystem::save_state byte stream at the measure-phase boundary.
  std::vector<std::uint8_t> state;
};

/// Fingerprint binding a snapshot to its configuration (every SystemConfig
/// field, every benchmark spec, the whole PhaseConfig including the seed).
std::uint64_t config_fingerprint(const SystemConfig& cfg,
                                 std::span<const workload::BenchmarkSpec> apps,
                                 const PhaseConfig& phases);

/// Writes `snapshot` to `path` in the versioned "BWPS" container (magic,
/// format version, config fingerprint, length-prefixed payload, FNV-1a
/// checksum over everything before it). Throws snap::SnapshotError on I/O
/// failure.
void write_profile_snapshot(const std::string& path,
                            const ProfileSnapshot& snapshot);

/// Reads a "BWPS" file back. Throws snap::SnapshotError naming the problem
/// on a bad magic, an unsupported version, truncation, trailing bytes or a
/// checksum mismatch — corruption is never silently restored.
ProfileSnapshot read_profile_snapshot(const std::string& path);

}  // namespace bwpart::harness
