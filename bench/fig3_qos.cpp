// Regenerates Fig. 3: QoS-guaranteed partitioning. Two mixed workloads
// (Mix-1: lbm-libquantum-omnetpp-hmmer, Mix-2: h264ref-zeusmp-leslie3d-
// hmmer); hmmer's IPC is guaranteed at 0.6 while the best-effort group is
// optimized; best-effort performance reported normalized to
// No_partitioning.
#include <cstdio>
#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "workload/mixes.hpp"

namespace {

using namespace bwpart;

double best_effort_metric(core::Metric m, const harness::RunResult& r) {
  // Metrics over the three best-effort apps only (indices 0..2).
  std::vector<double> shared, alone;
  for (std::size_t i = 0; i < 3; ++i) {
    shared.push_back(r.ipc_shared[i]);
    alone.push_back(r.params[i].ipc_alone());
  }
  return core::evaluate_metric(m, shared, alone);
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options opt = bench::parse_options(argc, argv, 2'000'000);
  const harness::SystemConfig machine;
  constexpr double kTarget = 0.6;

  std::printf("Fig. 3: QoS-guaranteed partitioning (hmmer IPC target %.1f)\n\n",
              kTarget);
  TextTable table({"quantity", "Mix-1", "Mix-2"});

  struct MixData {
    harness::RunResult base;
    harness::RunResult qos_hsp;   // best-effort Square_root
    harness::RunResult qos_wsp;   // best-effort Priority_APC
    harness::RunResult qos_ipc;   // best-effort Priority_API
  };
  MixData data[2];
  const workload::MixSpec* mixes[2] = {&workload::qos_mix1(),
                                       &workload::qos_mix2()};
  const core::QosRequirement req{3, kTarget};
  for (int i = 0; i < 2; ++i) {
    const auto apps = workload::resolve_mix(*mixes[i]);
    const harness::Experiment experiment(machine, apps, opt.phases);
    if (experiment.snapshot_reuse()) {
      // One profile per mix; the baseline and all three QoS variants fork
      // from it (bit-identical to the straight run/run_qos calls below).
      const harness::ProfileSnapshot snap = experiment.capture_profile();
      data[i].base =
          experiment.measure_from(snap, core::Scheme::NoPartitioning);
      data[i].qos_hsp = experiment.measure_qos_from(snap, std::span(&req, 1),
                                                    core::Scheme::SquareRoot);
      data[i].qos_wsp = experiment.measure_qos_from(snap, std::span(&req, 1),
                                                    core::Scheme::PriorityApc);
      data[i].qos_ipc = experiment.measure_qos_from(snap, std::span(&req, 1),
                                                    core::Scheme::PriorityApi);
    } else {
      data[i].base = experiment.run(core::Scheme::NoPartitioning);
      data[i].qos_hsp =
          experiment.run_qos(std::span(&req, 1), core::Scheme::SquareRoot);
      data[i].qos_wsp =
          experiment.run_qos(std::span(&req, 1), core::Scheme::PriorityApc);
      data[i].qos_ipc =
          experiment.run_qos(std::span(&req, 1), core::Scheme::PriorityApi);
    }
  }

  table.add_row({"hmmer IPC, No_partitioning",
                 TextTable::num(data[0].base.ipc_shared[3]),
                 TextTable::num(data[1].base.ipc_shared[3])});
  table.add_row({"hmmer IPC, QoS guaranteed",
                 TextTable::num(data[0].qos_hsp.ipc_shared[3]),
                 TextTable::num(data[1].qos_hsp.ipc_shared[3])});
  table.add_row(
      {"best-effort Hsp (norm)",
       TextTable::num(
           best_effort_metric(core::Metric::HarmonicWeightedSpeedup,
                              data[0].qos_hsp) /
           best_effort_metric(core::Metric::HarmonicWeightedSpeedup,
                              data[0].base)),
       TextTable::num(
           best_effort_metric(core::Metric::HarmonicWeightedSpeedup,
                              data[1].qos_hsp) /
           best_effort_metric(core::Metric::HarmonicWeightedSpeedup,
                              data[1].base))});
  table.add_row(
      {"best-effort Wsp (norm)",
       TextTable::num(best_effort_metric(core::Metric::WeightedSpeedup,
                                         data[0].qos_wsp) /
                      best_effort_metric(core::Metric::WeightedSpeedup,
                                         data[0].base)),
       TextTable::num(best_effort_metric(core::Metric::WeightedSpeedup,
                                         data[1].qos_wsp) /
                      best_effort_metric(core::Metric::WeightedSpeedup,
                                         data[1].base))});
  table.add_row(
      {"best-effort IPCsum (norm)",
       TextTable::num(best_effort_metric(core::Metric::IpcSum,
                                         data[0].qos_ipc) /
                      best_effort_metric(core::Metric::IpcSum,
                                         data[0].base)),
       TextTable::num(best_effort_metric(core::Metric::IpcSum,
                                         data[1].qos_ipc) /
                      best_effort_metric(core::Metric::IpcSum,
                                         data[1].base))});
  table.print(std::cout);
  std::printf(
      "\nExpected shape (paper): without QoS, hmmer floats below (Mix-1) or "
      "above (Mix-2)\nthe 0.6 target; with QoS it is held at the target and "
      "the best-effort metrics\nimprove over No_partitioning.\n");
  return 0;
}
