// Golden regression corpus: end-to-end RunResult fingerprints for all 14
// Table IV mixes x all 7 partitioning schemes at CI scale (seed 42), plus a
// per-DRAM-generation section (schema 2): two quick mixes x all schemes
// under each post-DDR2 generation (DDR3-1600, DDR4-2400, HBM-like), so a
// change to the generation registry, the posted-CAS timing derivation or
// the HBM-class geometry handling trips a fingerprint diff even though the
// 98 DDR2 entries stay pinned to their pre-registry values.
//
//   test_golden --file tests/golden/fingerprints.json [--update]
//
// Every sweep is computed through Experiment::run_all — under the default
// BWPART_SNAPSHOT=ON build that exercises the snapshot/fork path, and the
// CI job configured with -DBWPART_SNAPSHOT=OFF replays the identical corpus
// through straight per-scheme runs. Both builds compare against the same
// committed file, which makes the corpus a cross-path bit-identity proof on
// top of a regression tripwire: any change to the simulator, the scheduler
// stack or the snapshot engine that shifts even one double by one ULP shows
// up as a fingerprint diff.
//
// The fingerprints are toolchain-specific (std::pow in the 2/3-power scheme
// is not correctly rounded across libm versions), so a mismatch after a
// compiler/libc upgrade is expected — regenerate with --update and review
// the diff (see tests/golden/README.md).
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "../obs/mini_json.hpp"
#include "common/parallel.hpp"
#include "dram/config.hpp"
#include "harness/differential.hpp"
#include "harness/experiment.hpp"
#include "workload/mixes.hpp"

namespace {

using namespace bwpart;

harness::PhaseConfig golden_phases() {
  harness::PhaseConfig ph;
  ph.warmup_cycles = 20'000;
  ph.profile_cycles = 100'000;
  ph.measure_cycles = 100'000;
  ph.seed = 42;
  return ph;
}

std::string hex64(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "0x%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

/// mix name -> scheme name -> fingerprint, ordered as paper_mixes().
using Corpus = std::vector<std::pair<std::string, std::map<std::string, std::string>>>;

/// The post-DDR2 generations pinned by the "generations" section, and the
/// two mixes (one heterogeneous, one homogeneous) run under each.
constexpr const char* kGoldenGenerations[] = {"ddr3_1600", "ddr4_2400",
                                              "hbm_like"};
constexpr const char* kGoldenGenerationMixes[] = {"hetero-5", "homo-1"};

/// generation -> (mix -> scheme -> fingerprint), ordered as
/// kGoldenGenerations.
using GenCorpus = std::vector<std::pair<std::string, Corpus>>;

Corpus compute_corpus() {
  const auto mixes = workload::paper_mixes();
  const harness::SystemConfig machine;
  const harness::PhaseConfig phases = golden_phases();
  Corpus corpus(mixes.size());
  // Mixes in parallel, the scheme sweep serial inside each (run_all forks
  // all seven measure phases from one profile snapshot when the build
  // defaults to snapshot reuse, and runs straight through otherwise — the
  // committed corpus must match either way).
  parallel_for(mixes.size(), [&](std::size_t i) {
    const auto apps = workload::resolve_mix(mixes[i]);
    const harness::Experiment experiment(machine, apps, phases);
    const std::vector<harness::RunResult> results =
        experiment.run_all(core::kAllSchemes, 1);
    std::map<std::string, std::string> row;
    for (std::size_t s = 0; s < results.size(); ++s) {
      row[core::to_string(core::kAllSchemes[s])] =
          hex64(harness::fingerprint(results[s]));
    }
    corpus[i] = {std::string(mixes[i].name), std::move(row)};
  });
  return corpus;
}

GenCorpus compute_generation_corpus() {
  const auto mixes = workload::paper_mixes();
  const harness::PhaseConfig phases = golden_phases();
  constexpr std::size_t n_gens = std::size(kGoldenGenerations);
  constexpr std::size_t n_mixes = std::size(kGoldenGenerationMixes);
  GenCorpus corpus(n_gens);
  for (std::size_t g = 0; g < n_gens; ++g) {
    corpus[g] = {kGoldenGenerations[g], Corpus(n_mixes)};
  }
  // Flat (generation, mix) grid in parallel, scheme sweep serial inside.
  parallel_for(n_gens * n_mixes, [&](std::size_t idx) {
    const std::size_t g = idx / n_mixes;
    const std::size_t m = idx % n_mixes;
    harness::SystemConfig machine;
    machine.dram = dram::dram_config_for_generation(kGoldenGenerations[g]);
    const workload::MixSpec* spec = nullptr;
    for (const auto& mix : mixes) {
      if (mix.name == kGoldenGenerationMixes[m]) spec = &mix;
    }
    if (spec == nullptr) {
      std::fprintf(stderr, "unknown golden mix '%s'\n",
                   kGoldenGenerationMixes[m]);
      std::exit(2);
    }
    const auto apps = workload::resolve_mix(*spec);
    const harness::Experiment experiment(machine, apps, phases);
    const std::vector<harness::RunResult> results =
        experiment.run_all(core::kAllSchemes, 1);
    std::map<std::string, std::string> row;
    for (std::size_t s = 0; s < results.size(); ++s) {
      row[core::to_string(core::kAllSchemes[s])] =
          hex64(harness::fingerprint(results[s]));
    }
    corpus[g].second[m] = {std::string(spec->name), std::move(row)};
  });
  return corpus;
}

void write_rows(std::ofstream& os, const Corpus& corpus,
                const char* indent) {
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    os << indent << "\"" << corpus[i].first << "\": {";
    bool first = true;
    for (const auto& [scheme, fp] : corpus[i].second) {
      os << (first ? "" : ", ") << "\"" << scheme << "\": \"" << fp << "\"";
      first = false;
    }
    os << "}" << (i + 1 < corpus.size() ? "," : "") << "\n";
  }
}

void write_corpus(const std::string& path, const Corpus& corpus,
                  const GenCorpus& gen_corpus) {
  std::ofstream os(path);
  if (!os) {
    std::fprintf(stderr, "cannot open '%s' for writing\n", path.c_str());
    std::exit(2);
  }
  const harness::PhaseConfig ph = golden_phases();
  os << "{\n  \"schema\": 2,\n  \"seed\": " << ph.seed << ",\n"
     << "  \"phases\": {\"warmup\": " << ph.warmup_cycles
     << ", \"profile\": " << ph.profile_cycles
     << ", \"measure\": " << ph.measure_cycles << "},\n  \"mixes\": {\n";
  write_rows(os, corpus, "    ");
  os << "  },\n  \"generations\": {\n";
  for (std::size_t g = 0; g < gen_corpus.size(); ++g) {
    os << "    \"" << gen_corpus[g].first << "\": {\n";
    write_rows(os, gen_corpus[g].second, "      ");
    os << "    }" << (g + 1 < gen_corpus.size() ? "," : "") << "\n";
  }
  os << "  }\n}\n";
}

/// Compares one computed mix->scheme->fp table against a JSON object,
/// printing every divergence. `where` prefixes messages ("" for the DDR2
/// baseline, "ddr4_2400 / " for a generation section).
void check_rows(const testjson::Value& node, const Corpus& expected,
                const std::string& where, std::size_t& checked,
                std::size_t& mismatches) {
  for (const auto& [mix_name, expected_row] : expected) {
    if (!node.has(mix_name)) {
      std::fprintf(stderr, "golden corpus is missing mix '%s%s'\n",
                   where.c_str(), mix_name.c_str());
      ++mismatches;
      continue;
    }
    const testjson::Value& row = node.at(mix_name);
    for (const auto& [scheme, fp] : expected_row) {
      ++checked;
      if (!row.has(scheme)) {
        std::fprintf(stderr, "golden corpus is missing %s%s / %s\n",
                     where.c_str(), mix_name.c_str(), scheme.c_str());
        ++mismatches;
      } else if (row.at(scheme).str != fp) {
        std::fprintf(stderr, "MISMATCH %s%s / %s: golden %s, computed %s\n",
                     where.c_str(), mix_name.c_str(), scheme.c_str(),
                     row.at(scheme).str.c_str(), fp.c_str());
        ++mismatches;
      }
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  bool update = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--file") == 0 && i + 1 < argc) {
      path = argv[++i];
    } else if (std::strcmp(argv[i], "--update") == 0) {
      update = true;
    } else {
      std::fprintf(stderr, "usage: %s --file fingerprints.json [--update]\n",
                   argv[0]);
      return 2;
    }
  }
  if (path.empty()) {
    std::fprintf(stderr, "usage: %s --file fingerprints.json [--update]\n",
                 argv[0]);
    return 2;
  }

  const Corpus corpus = compute_corpus();
  const GenCorpus gen_corpus = compute_generation_corpus();
  if (update) {
    write_corpus(path, corpus, gen_corpus);
    std::printf(
        "wrote %zu mixes x %zu schemes plus %zu generations x %zu mixes "
        "to %s\n",
        corpus.size(), corpus.empty() ? 0 : corpus.front().second.size(),
        gen_corpus.size(),
        gen_corpus.empty() ? 0 : gen_corpus.front().second.size(),
        path.c_str());
    return 0;
  }

  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr,
                 "cannot open golden corpus '%s' — generate it with "
                 "'%s --file %s --update'\n",
                 path.c_str(), argv[0], path.c_str());
    return 2;
  }
  std::stringstream buf;
  buf << in.rdbuf();
  testjson::ValuePtr doc;
  try {
    doc = testjson::parse(buf.str());
  } catch (const std::runtime_error& e) {
    std::fprintf(stderr, "golden corpus '%s' is not valid JSON: %s\n",
                 path.c_str(), e.what());
    return 2;
  }

  if (!doc->has("schema") ||
      static_cast<int>(doc->at("schema").num) != 2) {
    std::fprintf(stderr,
                 "golden corpus '%s' uses an old schema (the generation "
                 "section arrived in schema 2) — regenerate with --update\n",
                 path.c_str());
    return 1;
  }

  const harness::PhaseConfig ph = golden_phases();
  if (static_cast<std::uint64_t>(doc->at("seed").num) != ph.seed ||
      static_cast<Cycle>(doc->at("phases").at("warmup").num) !=
          ph.warmup_cycles ||
      static_cast<Cycle>(doc->at("phases").at("profile").num) !=
          ph.profile_cycles ||
      static_cast<Cycle>(doc->at("phases").at("measure").num) !=
          ph.measure_cycles) {
    std::fprintf(stderr,
                 "golden corpus '%s' was generated for different phase "
                 "settings — regenerate with --update\n",
                 path.c_str());
    return 1;
  }

  const testjson::Value& mixes = doc->at("mixes");
  std::size_t checked = 0, mismatches = 0;
  check_rows(mixes, corpus, "", checked, mismatches);
  if (!doc->has("generations")) {
    std::fprintf(stderr,
                 "golden corpus '%s' has no \"generations\" section — "
                 "regenerate with --update\n",
                 path.c_str());
    ++mismatches;
  } else {
    const testjson::Value& gens = doc->at("generations");
    for (const auto& [gen_name, gen_rows] : gen_corpus) {
      if (!gens.has(gen_name)) {
        std::fprintf(stderr,
                     "golden corpus is missing generation '%s'\n",
                     gen_name.c_str());
        ++mismatches;
        continue;
      }
      check_rows(gens.at(gen_name), gen_rows, gen_name + " / ", checked,
                 mismatches);
    }
  }
  if (mismatches != 0) {
    std::fprintf(
        stderr,
        "\n%zu of %zu fingerprints diverge from the golden corpus.\n"
        "If this follows an intentional simulator/model change (or a "
        "compiler/libm\nupgrade — the corpus is toolchain-specific), "
        "regenerate with\n  test_golden --file %s --update\nand review the "
        "diff; see tests/golden/README.md. Otherwise this is a real\n"
        "regression: some run is no longer bit-identical to what it was.\n",
        mismatches, checked, path.c_str());
    return 1;
  }
  std::printf("all %zu fingerprints match the golden corpus\n", checked);
  return 0;
}
