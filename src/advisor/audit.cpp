#include "advisor/audit.hpp"

#include <cmath>
#include <vector>

#include "common/assert.hpp"
#include "core/partition.hpp"
#include "core/qos.hpp"
#include "harness/differential.hpp"
#include "workload/mixes.hpp"

namespace bwpart::advisor {

namespace {

const workload::MixSpec* find_mix(std::string_view name) {
  for (const workload::MixSpec& m : workload::paper_mixes()) {
    if (m.name == name) return &m;
  }
  if (workload::qos_mix1().name == name) return &workload::qos_mix1();
  if (workload::qos_mix2().name == name) return &workload::qos_mix2();
  return nullptr;
}

}  // namespace

struct AuditEngine::Entry {
  std::unique_ptr<harness::Experiment> experiment;
  harness::ProfileSnapshot snapshot;
};

AuditEngine::AuditEngine(const harness::SystemConfig& machine,
                         const harness::PhaseConfig& phases)
    : machine_(machine), phases_(phases) {}

AuditEngine::~AuditEngine() = default;

AuditEngine::Entry* AuditEngine::entry_for(std::string_view mix) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = cache_.find(mix);
  if (it != cache_.end()) return it->second.get();
  const workload::MixSpec* spec = find_mix(mix);
  if (spec == nullptr) return nullptr;
  auto entry = std::make_unique<Entry>();
  const std::vector<workload::BenchmarkSpec> apps =
      workload::resolve_mix(*spec);
  entry->experiment =
      std::make_unique<harness::Experiment>(machine_, apps, phases_);
  entry->snapshot = entry->experiment->capture_profile();
  Entry* raw = entry.get();
  cache_.emplace(std::string(mix), std::move(entry));
  return raw;
}

std::size_t AuditEngine::snapshots_captured() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cache_.size();
}

bool AuditEngine::audit(const Request& req, const Answer& answer, Arena& arena,
                        AuditRecord& out, std::string& error) {
  if (req.objective != Objective::Qos && !req.unit_weights) {
    error = "audit supports only unit-weight objectives";
    return false;
  }
  Entry* entry = entry_for(req.mix);
  if (entry == nullptr) {
    error = "unknown audit mix '" + std::string(req.mix) + "'";
    return false;
  }
  const harness::ProfileSnapshot& snap = entry->snapshot;
  const std::size_t n = snap.params.size();
  if (req.apps.size() != n) {
    error = "audit mix '" + std::string(req.mix) + "' has " +
            std::to_string(n) + " apps, request has " +
            std::to_string(req.apps.size());
    return false;
  }

  // The model side of the audit: the allocation the advisor's scheme
  // implies for the *profiled* parameters and bandwidth — exactly what the
  // measure phase will enforce.
  std::vector<double> predicted_alloc;
  harness::RunResult measured;
  if (req.objective == Objective::Qos) {
    const core::QosPlan plan = core::qos_allocate(
        snap.params, req.qos, snap.profiled_b, req.best_effort);
    if (!plan.feasible) {
      error = "qos targets infeasible on mix '" + std::string(req.mix) +
              "' profile";
      return false;
    }
    predicted_alloc = plan.apc_shared;
    measured =
        entry->experiment->measure_qos_from(snap, req.qos, req.best_effort);
  } else {
    predicted_alloc = core::analytic_allocation(answer.scheme, snap.params,
                                                snap.profiled_b);
    measured = entry->experiment->measure_from(snap, answer.scheme);
  }
  BWPART_ASSERT(measured.ipc_shared.size() == n, "audit arity mismatch");

  std::span<double> predicted = arena.alloc<double>(n);
  std::span<double> meas = arena.alloc<double>(n);
  double max_err = 0.0, sum_err = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    predicted[i] = predicted_alloc[i] / snap.params[i].api;  // Eq. 1
    meas[i] = measured.ipc_shared[i];
    BWPART_ASSERT(meas[i] > 0.0, "measured IPC must be positive");
    const double err = std::abs(predicted[i] - meas[i]) / meas[i];
    max_err = std::max(max_err, err);
    sum_err += err;
  }
  out.scheme = answer.scheme;
  out.predicted_ipc = predicted;
  out.measured_ipc = meas;
  out.max_rel_err = max_err;
  out.mean_rel_err = sum_err / static_cast<double>(n);
  out.fingerprint = harness::fingerprint(measured);
  return true;
}

}  // namespace bwpart::advisor
