// Set-associative write-back write-allocate cache with true-LRU
// replacement. Used for the private L1 D-cache and unified private L2 of
// each core (paper Table II: 32 KB 2-way L1, 256 KB 8-way L2, 64 B lines).
#pragma once

#include <cstdint>
#include <vector>

#include "common/snapshot_io.hpp"
#include "common/types.hpp"

namespace bwpart::cpu {

struct CacheGeometry {
  std::uint32_t size_bytes = 32 * 1024;
  std::uint32_t line_bytes = 64;
  std::uint32_t ways = 2;

  std::uint32_t sets() const { return size_bytes / (line_bytes * ways); }

  static CacheGeometry l1_default() { return {32 * 1024, 64, 2}; }
  static CacheGeometry l2_default() { return {256 * 1024, 64, 8}; }
};

class Cache {
 public:
  struct Outcome {
    bool hit = false;
    bool writeback = false;   ///< a dirty victim was evicted
    Addr writeback_addr = 0;  ///< line address of the dirty victim
  };

  explicit Cache(const CacheGeometry& geom);

  /// Looks up `addr`; on miss, allocates the line (evicting LRU). A write
  /// marks the line dirty. Returns hit/miss and any dirty eviction.
  Outcome access(Addr addr, AccessType type);

  /// Lookup without any state change (tests, warm-up inspection).
  bool probe(Addr addr) const;

  /// Drops all lines (clean and dirty) without writebacks.
  void invalidate_all();

  const CacheGeometry& geometry() const { return geom_; }
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  double hit_rate() const {
    const std::uint64_t total = hits_ + misses_;
    return total == 0 ? 0.0
                      : static_cast<double>(hits_) / static_cast<double>(total);
  }
  void reset_stats() { hits_ = misses_ = 0; }

  /// Snapshot hooks: every line (tags, LRU stamps, dirty bits), the LRU
  /// clock and the hit/miss counters. Geometry is configuration and must
  /// match the snapshot (checked on restore).
  void save_state(snap::Writer& w) const;
  void restore_state(snap::Reader& r);

 private:
  struct Line {
    std::uint64_t tag = 0;
    std::uint64_t lru_stamp = 0;
    bool valid = false;
    bool dirty = false;
  };

  std::uint64_t tag_of(Addr addr) const { return addr / geom_.line_bytes / sets_; }
  std::uint32_t set_of(Addr addr) const {
    return static_cast<std::uint32_t>((addr / geom_.line_bytes) % sets_);
  }
  Addr line_addr(std::uint64_t tag, std::uint32_t set) const {
    return (tag * sets_ + set) * geom_.line_bytes;
  }

  CacheGeometry geom_;
  std::uint32_t sets_;
  std::vector<Line> lines_;  // [set][way] flattened
  std::uint64_t stamp_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace bwpart::cpu
