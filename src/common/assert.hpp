// Always-on invariant checking. Simulator state machines are cheap relative
// to the cost of silently corrupting timing state, so these checks stay
// enabled in release builds.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace bwpart::detail {
[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const char* msg) {
  std::fprintf(stderr, "bwpart invariant violated: %s\n  at %s:%d\n  %s\n",
               expr, file, line, msg);
  std::abort();
}
}  // namespace bwpart::detail

#define BWPART_ASSERT(expr, msg)                                        \
  do {                                                                  \
    if (!(expr)) {                                                      \
      ::bwpart::detail::assert_fail(#expr, __FILE__, __LINE__, (msg));  \
    }                                                                   \
  } while (false)
