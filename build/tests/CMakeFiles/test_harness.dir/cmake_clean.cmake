file(REMOVE_RECURSE
  "CMakeFiles/test_harness.dir/harness/test_experiment.cpp.o"
  "CMakeFiles/test_harness.dir/harness/test_experiment.cpp.o.d"
  "CMakeFiles/test_harness.dir/harness/test_system.cpp.o"
  "CMakeFiles/test_harness.dir/harness/test_system.cpp.o.d"
  "test_harness"
  "test_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
