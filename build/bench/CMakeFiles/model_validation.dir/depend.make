# Empty dependencies file for model_validation.
# This may be replaced when dependencies are built.
