#include "obs/metrics.hpp"

#include "obs/json.hpp"

namespace bwpart::obs {

void Histogram::record(std::uint64_t v) {
  buckets_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  std::uint64_t cur = min_.load(std::memory_order_relaxed);
  while (v < cur &&
         !min_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (v > cur &&
         !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

namespace {

template <typename Map, typename Make>
decltype(auto) resolve(std::mutex& mu, Map& map, std::string_view name,
                       Make make) {
  std::lock_guard<std::mutex> lock(mu);
  auto it = map.find(name);
  if (it == map.end()) {
    it = map.emplace(std::string(name), make()).first;
  }
  return *it->second;
}

}  // namespace

Counter& Registry::counter(std::string_view name) {
  return resolve(mu_, counters_, name,
                 [] { return std::make_unique<Counter>(); });
}

Gauge& Registry::gauge(std::string_view name) {
  return resolve(mu_, gauges_, name, [] { return std::make_unique<Gauge>(); });
}

Histogram& Registry::histogram(std::string_view name) {
  return resolve(mu_, histograms_, name,
                 [] { return std::make_unique<Histogram>(); });
}

std::size_t Registry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_.size() + gauges_.size() + histograms_.size();
}

void Registry::write_json(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mu_);
  os << '{';
  bool first = true;
  auto sep = [&] {
    if (!first) os << ',';
    first = false;
  };
  for (const auto& [name, c] : counters_) {
    sep();
    json::write_string(os, name);
    os << ':' << c->value();
  }
  for (const auto& [name, g] : gauges_) {
    sep();
    json::write_string(os, name);
    os << ':';
    json::write_double(os, g->value());
  }
  for (const auto& [name, h] : histograms_) {
    sep();
    json::write_string(os, name);
    os << ":{\"count\":" << h->count() << ",\"sum\":" << h->sum();
    if (h->count() > 0) {
      os << ",\"min\":" << h->min() << ",\"max\":" << h->max();
    }
    os << ",\"mean\":";
    json::write_double(os, h->mean());
    os << ",\"buckets\":{";
    bool bfirst = true;
    for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
      const std::uint64_t n = h->bucket_count(i);
      if (n == 0) continue;
      if (!bfirst) os << ',';
      bfirst = false;
      os << '"' << Histogram::bucket_lower(i) << "\":" << n;
    }
    os << "}}";
  }
  os << '}';
}

}  // namespace bwpart::obs
