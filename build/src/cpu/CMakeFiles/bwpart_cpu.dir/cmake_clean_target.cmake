file(REMOVE_RECURSE
  "libbwpart_cpu.a"
)
