// Unit tests for the observability metrics registry: instrument semantics,
// stable resolution, and a JSON export that parses back to the recorded
// values.
#include <cstdint>
#include <limits>
#include <sstream>

#include <gtest/gtest.h>

#include "mini_json.hpp"
#include "obs/metrics.hpp"

namespace bwpart::obs {
namespace {

TEST(ObsCounter, AccumulatesExactly) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(ObsGauge, HoldsLastWrite) {
  Gauge g;
  EXPECT_EQ(g.value(), 0.0);
  g.set(3.25);
  EXPECT_EQ(g.value(), 3.25);
  g.set(-0.5);
  EXPECT_EQ(g.value(), -0.5);
}

TEST(ObsHistogram, BucketIndexMatchesLog2Layout) {
  // Bucket 0 holds only 0; bucket i >= 1 holds [2^(i-1), 2^i).
  EXPECT_EQ(Histogram::bucket_index(0), 0u);
  EXPECT_EQ(Histogram::bucket_index(1), 1u);
  EXPECT_EQ(Histogram::bucket_index(2), 2u);
  EXPECT_EQ(Histogram::bucket_index(3), 2u);
  EXPECT_EQ(Histogram::bucket_index(4), 3u);
  EXPECT_EQ(Histogram::bucket_index(std::numeric_limits<std::uint64_t>::max()),
            64u);
  for (std::size_t i = 1; i < Histogram::kBuckets; ++i) {
    // The lower edge of each bucket indexes into that bucket, and the value
    // just below it into the previous one.
    EXPECT_EQ(Histogram::bucket_index(Histogram::bucket_lower(i)), i);
    EXPECT_EQ(Histogram::bucket_index(Histogram::bucket_lower(i) - 1), i - 1);
  }
}

TEST(ObsHistogram, TracksCountSumMinMax) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(h.max(), 0u);
  h.record(7);
  h.record(0);
  h.record(1024);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 1031u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 1024u);
  EXPECT_DOUBLE_EQ(h.mean(), 1031.0 / 3.0);
  EXPECT_EQ(h.bucket_count(Histogram::bucket_index(7)), 1u);
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.bucket_count(11), 1u);  // 1024 = 2^10 -> bucket 11
}

TEST(ObsRegistry, ResolvesStableReferences) {
  Registry reg;
  Counter& a = reg.counter("mem.requests");
  Counter& b = reg.counter("mem.requests");
  EXPECT_EQ(&a, &b);
  a.add(3);
  EXPECT_EQ(b.value(), 3u);
  // Same name in different instrument families is a distinct instrument.
  reg.gauge("mem.requests").set(1.5);
  EXPECT_EQ(reg.counter("mem.requests").value(), 3u);
  EXPECT_EQ(reg.size(), 2u);
}

TEST(ObsRegistry, JsonExportRoundTrips) {
  Registry reg;
  reg.counter("a.count").add(7);
  reg.gauge("g\"quoted\"\n").set(0.25);
  Histogram& h = reg.histogram("lat");
  h.record(0);
  h.record(5);
  h.record(5);

  std::ostringstream os;
  reg.write_json(os);
  const testjson::ValuePtr doc = testjson::parse(os.str());
  ASSERT_TRUE(doc->is_object());
  EXPECT_EQ(doc->at("a.count").num, 7.0);
  // Escaped names survive the round trip.
  EXPECT_EQ(doc->at("g\"quoted\"\n").num, 0.25);
  const testjson::Value& lat = doc->at("lat");
  EXPECT_EQ(lat.at("count").num, 3.0);
  EXPECT_EQ(lat.at("sum").num, 10.0);
  EXPECT_EQ(lat.at("min").num, 0.0);
  EXPECT_EQ(lat.at("max").num, 5.0);
  const testjson::Value& buckets = lat.at("buckets");
  EXPECT_EQ(buckets.at("0").num, 1.0);  // value 0
  EXPECT_EQ(buckets.at("4").num, 2.0);  // 5 lands in [4, 8)
  // Empty buckets are omitted.
  EXPECT_FALSE(buckets.has("1"));
}

TEST(ObsRegistry, EmptyHistogramExportsWithoutMinMax) {
  Registry reg;
  reg.histogram("empty");
  std::ostringstream os;
  reg.write_json(os);
  const testjson::ValuePtr doc = testjson::parse(os.str());
  const testjson::Value& h = doc->at("empty");
  EXPECT_EQ(h.at("count").num, 0.0);
  EXPECT_FALSE(h.has("min"));
  EXPECT_FALSE(h.has("max"));
}

}  // namespace
}  // namespace bwpart::obs
