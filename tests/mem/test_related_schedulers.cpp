// Tests for the related-work schedulers: the original (arrival-anchored)
// DSTF the paper modifies, and STFM.
#include <gtest/gtest.h>

#include <array>
#include <memory>

#include "mem/controller.hpp"
#include "mem/scheduler.hpp"

namespace bwpart::mem {
namespace {

dram::DramSystem make_dram() {
  dram::DramConfig cfg = dram::DramConfig::ddr2_400();
  cfg.enable_refresh = false;
  return dram::DramSystem(cfg);
}

MemRequest req(std::uint64_t id, AppId app, Cycle arrival) {
  MemRequest r;
  r.id = id;
  r.app = app;
  r.arrival_cpu = arrival;
  return r;
}

TEST(ClassicDstf, TagsAnchoredToServiceClock) {
  ClassicDstfScheduler s(2);
  const std::array<double, 2> beta{0.5, 0.5};
  s.set_shares(beta);
  MemRequest a = req(0, 0, 0);
  s.on_enqueue(a, 0);
  EXPECT_DOUBLE_EQ(a.start_tag, 0.0);
  s.on_issue(a);  // virtual time stays 0 (a's tag)
  MemRequest b = req(1, 0, 0);
  s.on_enqueue(b, 0);
  EXPECT_DOUBLE_EQ(b.start_tag, 2.0);  // F = S + 1/beta
}

TEST(ClassicDstf, IdleApplicationForfeitsItsShare) {
  // The original DSTF: after app 1 is served for a long stretch, an idle
  // app 0's next request is anchored to the advanced virtual clock, not to
  // its own stale finish tag — it cannot reclaim the share it never used.
  ClassicDstfScheduler s(2);
  const std::array<double, 2> beta{0.5, 0.5};
  s.set_shares(beta);
  // App 1 streams 50 requests, all served.
  for (int i = 0; i < 50; ++i) {
    MemRequest r = req(static_cast<std::uint64_t>(i), 1, 0);
    s.on_enqueue(r, 0);
    s.on_issue(r);
  }
  EXPECT_GT(s.virtual_time(), 90.0);
  MemRequest idle_app = req(100, 0, 0);
  s.on_enqueue(idle_app, 0);
  // Anchored forward: tag ~ virtual_time, NOT 0.
  EXPECT_GE(idle_app.start_tag, s.virtual_time());
}

TEST(ClassicDstf, ContrastWithModifiedDstf) {
  // The paper's modified scheduler lets the idle app catch up (tag 0).
  StartTimeFairScheduler modified(2);
  ClassicDstfScheduler classic(2);
  const std::array<double, 2> beta{0.5, 0.5};
  modified.set_shares(beta);
  classic.set_shares(beta);
  for (int i = 0; i < 50; ++i) {
    MemRequest m = req(static_cast<std::uint64_t>(i), 1, 0);
    modified.on_enqueue(m, 0);
    modified.on_issue(m);
    MemRequest c = req(static_cast<std::uint64_t>(i), 1, 0);
    classic.on_enqueue(c, 0);
    classic.on_issue(c);
  }
  MemRequest m = req(100, 0, 0);
  modified.on_enqueue(m, 0);
  MemRequest c = req(100, 0, 0);
  classic.on_enqueue(c, 0);
  EXPECT_DOUBLE_EQ(m.start_tag, 0.0);   // full catch-up credit
  EXPECT_GT(c.start_tag, 90.0);         // credit forfeited
}

TEST(ClassicDstf, ServesInTagOrder) {
  auto d = make_dram();
  ClassicDstfScheduler s(2);
  MemRequest a = req(0, 0, 0);
  a.start_tag = 5.0;
  MemRequest b = req(1, 1, 10);
  b.start_tag = 3.0;
  EXPECT_TRUE(s.before(b, a, d));
  EXPECT_FALSE(s.before(a, b, d));
}

TEST(Stfm, FairnessModeTriggersOnImbalance) {
  StfmScheduler s(2, 1.1);
  const std::array<double, 2> even{1.5, 1.5};
  s.set_slowdowns(even);
  EXPECT_FALSE(s.fairness_mode_active());
  const std::array<double, 2> skewed{3.0, 1.2};
  s.set_slowdowns(skewed);
  EXPECT_TRUE(s.fairness_mode_active());
}

TEST(Stfm, PrioritizesMostSlowedDownApp) {
  auto d = make_dram();
  StfmScheduler s(2, 1.1);
  const std::array<double, 2> skewed{3.0, 1.2};
  s.set_slowdowns(skewed);
  MemRequest slow = req(0, 0, 100);  // newer but app 0 is most slowed
  MemRequest fast = req(1, 1, 5);
  EXPECT_TRUE(s.before(slow, fast, d));
}

TEST(Stfm, FallsBackToFrFcfsWhenBalanced) {
  auto d = make_dram();
  // Open a row so row-hit priority is observable.
  const dram::Location open_loc{0, 0, 0, 7, 0};
  d.tick(0);
  d.issue({dram::CommandType::Activate, open_loc, 0, 0}, 0);
  StfmScheduler s(2, 2.0);
  const std::array<double, 2> even{1.3, 1.4};  // ratio < alpha
  s.set_slowdowns(even);
  MemRequest hit = req(0, 0, 100);
  hit.loc = open_loc;
  MemRequest miss = req(1, 1, 5);
  miss.loc = open_loc;
  miss.loc.row = 9;
  EXPECT_TRUE(s.before(hit, miss, d));  // row hit wins
}

TEST(Stfm, EndToEndImprovesFairnessUnderImbalance) {
  // Two apps on one bank; app 0 declared heavily slowed: it should receive
  // the majority of service while fairness mode is active.
  auto sched = std::make_unique<StfmScheduler>(2, 1.1);
  const std::array<double, 2> skewed{4.0, 1.0};
  sched->set_slowdowns(skewed);
  dram::DramConfig cfg = dram::DramConfig::ddr2_400();
  cfg.enable_refresh = false;
  MemoryController mc(cfg, Frequency::from_ghz(5.0), 2, std::move(sched), 16,
                      dram::MapScheme::ChanRowColBankRank, 64,
                      AdmissionMode::PerApp);
  mc.set_completion_callback([](const MemRequest&, Cycle) {});
  std::uint64_t l0 = 0, l1 = 1 << 20;
  for (Cycle t = 0; t < 200'000; ++t) {
    if (mc.can_accept(0)) mc.enqueue(0, (l0++) * 64, AccessType::Read, t);
    if (mc.can_accept(1)) mc.enqueue(1, (l1++) * 64, AccessType::Read, t);
    mc.tick(t);
  }
  EXPECT_GT(mc.app_stats(0).served(), mc.app_stats(1).served() * 5);
}

}  // namespace
}  // namespace bwpart::mem
