file(REMOVE_RECURSE
  "CMakeFiles/bwpart_common.dir/log.cpp.o"
  "CMakeFiles/bwpart_common.dir/log.cpp.o.d"
  "CMakeFiles/bwpart_common.dir/parallel.cpp.o"
  "CMakeFiles/bwpart_common.dir/parallel.cpp.o.d"
  "CMakeFiles/bwpart_common.dir/rng.cpp.o"
  "CMakeFiles/bwpart_common.dir/rng.cpp.o.d"
  "CMakeFiles/bwpart_common.dir/stats.cpp.o"
  "CMakeFiles/bwpart_common.dir/stats.cpp.o.d"
  "CMakeFiles/bwpart_common.dir/table.cpp.o"
  "CMakeFiles/bwpart_common.dir/table.cpp.o.d"
  "libbwpart_common.a"
  "libbwpart_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bwpart_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
