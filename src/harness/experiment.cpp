#include "harness/experiment.hpp"

#include <algorithm>
#include <chrono>

#include "common/assert.hpp"
#include "common/parallel.hpp"
#include "harness/churn.hpp"
#include "profile/alone_profiler.hpp"

namespace bwpart::harness {

double RunResult::metric(core::Metric m) const {
  switch (m) {
    case core::Metric::HarmonicWeightedSpeedup: return hsp;
    case core::Metric::MinFairness: return min_fairness;
    case core::Metric::WeightedSpeedup: return wsp;
    case core::Metric::IpcSum: return ipcsum;
  }
  BWPART_ASSERT(false, "unknown metric");
  return 0.0;
}

Experiment::Experiment(const SystemConfig& cfg,
                       std::span<const workload::BenchmarkSpec> apps,
                       const PhaseConfig& phases)
    : cfg_(cfg), apps_(apps.begin(), apps.end()), phases_(phases) {
  BWPART_ASSERT(!apps_.empty(), "experiment needs at least one app");
  BWPART_ASSERT(phases.profile_cycles > 0 && phases.measure_cycles > 0,
                "profile/measure windows must be positive");
}

namespace {

/// Phase span on the system trace track, or a dormant span when no hub is
/// attached/enabled (ScopedSpan tolerates a null emitter).
obs::ScopedSpan phase_span(const CmpSystem& sys, std::string name) {
  obs::Hub* hub = sys.observability();
  obs::TraceEmitter* em =
      (obs::kEnabled && hub != nullptr && hub->enabled()) ? &hub->trace()
                                                          : nullptr;
  return obs::ScopedSpan(em, std::move(name), obs::TraceEmitter::kSystemTrack,
                         sys.cycle_clock());
}

/// Accumulates this scope's wall-clock time into a hub counter (so hosts
/// like bench/perf_regression can attribute wall time to warmup / profile /
/// measure). Dormant when the hub is absent, disabled or compiled out.
class PhaseTimer {
 public:
  PhaseTimer(obs::Hub* hub, const char* key) : key_(key) {
    if constexpr (obs::kEnabled) {
      if (hub != nullptr && hub->enabled()) {
        hub_ = hub;
        start_ = std::chrono::steady_clock::now();
      }
    }
  }
  ~PhaseTimer() {
    if constexpr (obs::kEnabled) {
      if (hub_ != nullptr) {
        const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                            std::chrono::steady_clock::now() - start_)
                            .count();
        hub_->metrics().counter(key_).add(static_cast<std::uint64_t>(ns));
      }
    }
  }
  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

 private:
  obs::Hub* hub_ = nullptr;
  const char* key_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace

std::vector<core::AppParams> Experiment::profile_phase(CmpSystem& sys) const {
  {
    obs::ScopedSpan span = phase_span(sys, "warmup");
    PhaseTimer timer(hub_, "harness.wall_ns.warmup");
    sys.run(phases_.warmup_cycles);
  }
  sys.reset_measurement();
  {
    obs::ScopedSpan span = phase_span(sys, "profile");
    PhaseTimer timer(hub_, "harness.wall_ns.profile");
    sys.run(phases_.profile_cycles);
  }
  if (phases_.oracle_alone) return profile_alone_oracle();
  const auto counters = sys.profiler_counters();
  std::vector<core::AppParams> params;
  params.reserve(counters.size());
  for (const profile::AppCounters& c : counters) {
    params.push_back(profile::estimate_alone(c, phases_.profile_cycles));
  }
  return params;
}

RunResult Experiment::measure_phase(
    CmpSystem& sys, core::Scheme scheme, std::vector<core::AppParams> params,
    std::span<const double> shares_override) const {
  const std::size_t n = apps_.size();
  // Every controller gets its own enforcement scheduler instance carrying
  // the globally computed shares/ranks: DSTF virtual time only advances for
  // the applications actually issuing to that controller, so each
  // controller independently partitions its bandwidth among its local
  // subset (per-controller DSTF enforcement).
  for (std::size_t c = 0; c < sys.num_controllers(); ++c) {
    std::unique_ptr<mem::Scheduler> sched;
    if (!shares_override.empty()) {
      auto stf = std::make_unique<mem::StartTimeFairScheduler>(
          n, cfg_.dstf_row_hit_window);
      stf->set_shares(shares_override);
      sched = std::move(stf);
    } else {
      sched = make_scheduler(scheme, n, params, cfg_.dstf_row_hit_window);
    }
    sys.controller(c).replace_scheduler(std::move(sched));
    // Partitioned schemes use per-application queue slices (QoS-style
    // controllers); No_partitioning keeps the classic shared FCFS queue.
    sys.controller(c).set_admission_mode(
        scheme == core::Scheme::NoPartitioning && shares_override.empty()
            ? mem::AdmissionMode::Shared
            : mem::AdmissionMode::PerApp);
  }
  sys.reset_measurement();
  {
    obs::ScopedSpan span =
        phase_span(sys, "measure:" + core::to_string(scheme));
    PhaseTimer timer(hub_, "harness.wall_ns.measure");
    if (phases_.reprofile_period > 0 && shares_override.empty()) {
      profile::RollingProfiler rolling(
          static_cast<std::uint32_t>(n), phases_.reprofile_period);
      rolling.set_observability(sys.observability());
      Cycle done = 0;
      while (done < phases_.measure_cycles) {
        const Cycle chunk =
            std::min<Cycle>(phases_.reprofile_period,
                            phases_.measure_cycles - done);
        sys.run(chunk);
        done += chunk;
        if (auto fresh = rolling.update(done, sys.profiler_counters())) {
          for (std::size_t c = 0; c < sys.num_controllers(); ++c) {
            apply_scheme(sys.controller(c).scheduler(), scheme, *fresh);
          }
          params = std::move(*fresh);
        }
      }
    } else {
      sys.run(phases_.measure_cycles);
    }
  }

  sys.check_conservation("Experiment::measure_phase");

  RunResult r;
  r.scheme = scheme;
  r.params = std::move(params);
  r.ipc_shared = sys.measured_ipc();
  r.apc_shared = sys.measured_apc();
  r.total_apc = sys.measured_total_apc();
  r.bus_utilization = sys.bus_utilization();

  std::vector<double> ipc_alone;
  ipc_alone.reserve(n);
  for (const core::AppParams& p : r.params) {
    ipc_alone.push_back(p.ipc_alone());
  }
  const bool starved = std::any_of(r.ipc_shared.begin(), r.ipc_shared.end(),
                                   [](double x) { return x <= 0.0; });
  r.hsp = starved ? 0.0
                  : core::harmonic_weighted_speedup(r.ipc_shared, ipc_alone);
  r.wsp = core::weighted_speedup(r.ipc_shared, ipc_alone);
  r.ipcsum = core::ipc_sum(r.ipc_shared);
  r.min_fairness = core::min_fairness(r.ipc_shared, ipc_alone);
  return r;
}

RunResult Experiment::run(core::Scheme scheme) const {
  CmpSystem sys(cfg_, apps_, phases_.seed);
  sys.set_observability(hub_);
  sys.set_obs_track(core::to_string(scheme));
  std::vector<core::AppParams> params = profile_phase(sys);
  return measure_phase(sys, scheme, std::move(params), {});
}

RunResult Experiment::run_qos(
    std::span<const core::QosRequirement> requirements,
    core::Scheme best_effort_scheme) const {
  CmpSystem sys(cfg_, apps_, phases_.seed);
  sys.set_observability(hub_);
  sys.set_obs_track("qos:" + core::to_string(best_effort_scheme));
  std::vector<core::AppParams> params = profile_phase(sys);
  // B: the bandwidth actually utilized during the profile window.
  const double b = sys.measured_total_apc();
  const core::QosPlan plan =
      core::qos_allocate(params, requirements, b, best_effort_scheme);
  BWPART_ASSERT(plan.feasible, "QoS targets infeasible at measured bandwidth");
  return measure_phase(sys, best_effort_scheme, std::move(params), plan.beta);
}

ChurnRunResult Experiment::run_churn(const ChurnSchedule& schedule,
                                     const ChurnRunConfig& churn_cfg) const {
  CmpSystem sys(cfg_, apps_, phases_.seed);
  sys.set_observability(hub_);
  sys.set_obs_track("churn:" + core::to_string(churn_cfg.scheme));
  std::vector<core::AppParams> params = profile_phase(sys);
  const double b = sys.measured_total_apc();
  return harness::run_churn(sys, schedule, churn_cfg, phases_.measure_cycles,
                            std::move(params), b, cfg_.dstf_row_hit_window);
}

ChurnRunResult Experiment::measure_churn_from(
    const ProfileSnapshot& snapshot, const ChurnSchedule& schedule,
    const ChurnRunConfig& churn_cfg) const {
  CmpSystem sys(cfg_, apps_, phases_.seed);
  sys.set_observability(hub_);
  sys.set_obs_track("churn:" + core::to_string(churn_cfg.scheme));
  restore_into(sys, snapshot);
  return harness::run_churn(sys, schedule, churn_cfg, phases_.measure_cycles,
                            snapshot.params, snapshot.profiled_b,
                            cfg_.dstf_row_hit_window);
}

ProfileSnapshot Experiment::capture_profile() const {
  CmpSystem sys(cfg_, apps_, phases_.seed);
  sys.set_observability(hub_);
  sys.set_obs_track("profile");
  ProfileSnapshot snap;
  snap.config_fp = config_fingerprint();
  snap.params = profile_phase(sys);
  // The bandwidth utilized during the profile window, exactly as run_qos()
  // measures it before allocating — stored so QoS forks plan identically.
  snap.profiled_b = sys.measured_total_apc();
  snap::Writer w;
  sys.save_state(w);
  snap.state = w.take();
  return snap;
}

void Experiment::restore_into(CmpSystem& sys,
                              const ProfileSnapshot& snapshot) const {
  snap::require(snapshot.config_fp == config_fingerprint(),
                "snapshot was captured under a different configuration "
                "(machine, workload, phases or seed differ)");
  snap::Reader r(snapshot.state);
  sys.restore_state(r);
  snap::require(r.at_end(), "trailing bytes after the system state blob");
}

RunResult Experiment::measure_from(const ProfileSnapshot& snapshot,
                                   core::Scheme scheme) const {
  CmpSystem sys(cfg_, apps_, phases_.seed);
  sys.set_observability(hub_);
  sys.set_obs_track(core::to_string(scheme));
  restore_into(sys, snapshot);
  return measure_phase(sys, scheme, snapshot.params, {});
}

RunResult Experiment::measure_qos_from(
    const ProfileSnapshot& snapshot,
    std::span<const core::QosRequirement> requirements,
    core::Scheme best_effort_scheme) const {
  CmpSystem sys(cfg_, apps_, phases_.seed);
  sys.set_observability(hub_);
  sys.set_obs_track("qos:" + core::to_string(best_effort_scheme));
  restore_into(sys, snapshot);
  const core::QosPlan plan = core::qos_allocate(
      snapshot.params, requirements, snapshot.profiled_b, best_effort_scheme);
  BWPART_ASSERT(plan.feasible, "QoS targets infeasible at measured bandwidth");
  return measure_phase(sys, best_effort_scheme, snapshot.params, plan.beta);
}

std::vector<RunResult> Experiment::run_all(
    std::span<const core::Scheme> schemes, std::size_t threads) const {
  std::vector<RunResult> results(schemes.size());
  if (snapshot_reuse_) {
    const ProfileSnapshot snapshot = capture_profile();
    parallel_for(
        schemes.size(),
        [&](std::size_t i) { results[i] = measure_from(snapshot, schemes[i]); },
        threads);
  } else {
    parallel_for(
        schemes.size(),
        [&](std::size_t i) { results[i] = run(schemes[i]); }, threads);
  }
  return results;
}

std::uint64_t Experiment::config_fingerprint() const {
  return harness::config_fingerprint(cfg_, apps_, phases_);
}

std::vector<core::AppParams> Experiment::profile_alone_oracle() const {
  std::vector<core::AppParams> out;
  out.reserve(apps_.size());
  for (const workload::BenchmarkSpec& bench : apps_) {
    out.push_back(profile_standalone(cfg_, bench, phases_));
  }
  return out;
}

core::AppParams profile_standalone(const SystemConfig& cfg,
                                   const workload::BenchmarkSpec& bench,
                                   const PhaseConfig& phases) {
  const workload::BenchmarkSpec one[] = {bench};
  CmpSystem sys(cfg, one, phases.seed);
  sys.run(phases.warmup_cycles);
  sys.reset_measurement();
  sys.run(phases.profile_cycles);
  core::AppParams p;
  p.apc_alone = sys.measured_apc()[0];
  const double ipc = sys.measured_ipc()[0];
  p.api = ipc > 0.0 ? p.apc_alone / ipc : 0.0;
  return p;
}

}  // namespace bwpart::harness
