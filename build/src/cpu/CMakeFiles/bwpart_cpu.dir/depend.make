# Empty dependencies file for bwpart_cpu.
# This may be replaced when dependencies are built.
