#include "harness/system.hpp"

#include <cstdio>

#include "common/assert.hpp"
#include "common/check.hpp"

namespace bwpart::harness {

std::unique_ptr<mem::Scheduler> make_scheduler(
    core::Scheme scheme, std::size_t num_apps,
    std::span<const core::AppParams> params, double row_hit_window) {
  using core::Scheme;
  switch (scheme) {
    case Scheme::NoPartitioning:
      return std::make_unique<mem::FcfsScheduler>();
    case Scheme::PriorityApc:
    case Scheme::PriorityApi: {
      auto sched = std::make_unique<mem::StrictPriorityScheduler>(num_apps);
      apply_scheme(*sched, scheme, params);
      return sched;
    }
    case Scheme::Equal:
    case Scheme::Proportional:
    case Scheme::SquareRoot:
    case Scheme::TwoThirdsPower: {
      auto sched = std::make_unique<mem::StartTimeFairScheduler>(
          num_apps, row_hit_window);
      apply_scheme(*sched, scheme, params);
      return sched;
    }
  }
  BWPART_ASSERT(false, "unknown scheme");
  return nullptr;
}

void apply_scheme(mem::Scheduler& sched, core::Scheme scheme,
                  std::span<const core::AppParams> params) {
  using core::Scheme;
  switch (scheme) {
    case Scheme::NoPartitioning:
      return;  // FCFS has no knobs
    case Scheme::PriorityApc:
    case Scheme::PriorityApi: {
      const auto ranks = core::priority_ranks(scheme, params);
      sched.set_priority_ranks(ranks);
      return;
    }
    case Scheme::Equal:
    case Scheme::Proportional:
    case Scheme::SquareRoot:
    case Scheme::TwoThirdsPower: {
      // Share-based schemes: only relative weights matter to the
      // enforcement scheduler, so the bandwidth argument is arbitrary.
      const auto beta = core::compute_shares(scheme, params, 1.0);
      sched.set_shares(beta);
      return;
    }
  }
  BWPART_ASSERT(false, "unknown scheme");
}

CmpSystem::CmpSystem(const SystemConfig& cfg,
                     std::span<const workload::BenchmarkSpec> apps,
                     std::uint64_t seed)
    : cfg_(cfg),
      apps_(apps.begin(), apps.end()),
      interference_(static_cast<std::uint32_t>(apps.size())) {
  BWPART_ASSERT(!apps_.empty(), "system needs at least one app");
  const auto n = static_cast<std::uint32_t>(apps_.size());
  // Systems start under No_partitioning (FCFS); experiments swap the
  // scheduler at phase boundaries via controller().replace_scheduler().
  controller_ = std::make_unique<mem::MemoryController>(
      cfg_.dram, cfg_.cpu_clock, n, std::make_unique<mem::FcfsScheduler>(),
      cfg_.queue_capacity_per_app, dram::MapScheme::ChanRowColBankRank,
      cfg_.queue_capacity_shared, mem::AdmissionMode::Shared);
  controller_->set_interference_observer(&interference_);

  traces_.reserve(n);
  cores_.reserve(n);
  for (AppId a = 0; a < n; ++a) {
    traces_.push_back(std::make_unique<workload::SyntheticTraceGenerator>(
        workload::SyntheticTraceGenerator::from_benchmark(apps_[a], a, seed)));
    cpu::CoreConfig cc = cfg_.core;
    cc.nonmem_ipc = apps_[a].nonmem_ipc;
    cores_.push_back(std::make_unique<cpu::OoOCore>(a, cc, *traces_[a],
                                                    *controller_));
  }
  controller_->set_completion_callback(
      [this](const mem::MemRequest& req, Cycle done_cpu) {
        cores_[req.app]->on_mem_complete(req, done_cpu);
      });
}

void CmpSystem::run(Cycle cycles) {
  const Cycle end = now_ + cycles;
  while (now_ < end) {
    for (auto& c : cores_) c->tick(now_);
    controller_->tick(now_);
    ++now_;
  }
}

void CmpSystem::reset_measurement() {
  for (auto& c : cores_) c->reset_stats();
  controller_->reset_stats();
  interference_.reset();
  window_start_ = now_;
}

std::vector<profile::AppCounters> CmpSystem::profiler_counters() const {
  std::vector<profile::AppCounters> out(cores_.size());
  for (AppId a = 0; a < cores_.size(); ++a) {
    out[a].accesses = controller_->app_stats(a).served();
    out[a].instructions = cores_[a]->stats().instructions;
    out[a].interference_cycles = interference_.interference_cycles(a);
  }
  return out;
}

std::vector<double> CmpSystem::measured_ipc() const {
  std::vector<double> out;
  out.reserve(cores_.size());
  const Cycle window = now_ - window_start_;
  for (const auto& c : cores_) {
    out.push_back(window == 0 ? 0.0
                              : static_cast<double>(c->stats().instructions) /
                                    static_cast<double>(window));
  }
  return out;
}

std::vector<double> CmpSystem::measured_apc() const {
  std::vector<double> out;
  out.reserve(cores_.size());
  const Cycle window = now_ - window_start_;
  for (AppId a = 0; a < cores_.size(); ++a) {
    out.push_back(
        window == 0
            ? 0.0
            : static_cast<double>(controller_->app_stats(a).served()) /
                  static_cast<double>(window));
  }
  return out;
}

double CmpSystem::measured_total_apc() const {
  double total = 0.0;
  for (double apc : measured_apc()) total += apc;
  return total;
}

void CmpSystem::check_conservation(const char* where) const {
  if constexpr (!check::kEnabled) {
    (void)where;
    return;
  }
  // Eq. 2 over the measured window: sum_i APC_shared,i == B.
  check::bandwidth_accounting(measured_apc(), measured_total_apc(), where);
  // Double-entry bookkeeping across layers: the controller counts a request
  // when its data is delivered, the DRAM engine when the column command
  // issues, so the two totals may differ only by requests in flight at the
  // window edges (bounded by the queue capacity).
  std::uint64_t served = 0;
  for (AppId a = 0; a < num_apps(); ++a) {
    served += controller_->app_stats(a).served();
  }
  const std::uint64_t dram_cols =
      controller_->dram().stats().column_accesses();
  const std::uint64_t slack = controller_->queue_capacity_bound();
  const std::uint64_t diff =
      served > dram_cols ? served - dram_cols : dram_cols - served;
  if (diff > slack) {
    char buf[192];
    std::snprintf(buf, sizeof(buf),
                  "%s: Eq. 2 accounting — controller served %llu requests "
                  "but DRAM issued %llu column accesses (slack %llu)",
                  where, static_cast<unsigned long long>(served),
                  static_cast<unsigned long long>(dram_cols),
                  static_cast<unsigned long long>(slack));
    check::report(buf, __FILE__, __LINE__);
  }
}

}  // namespace bwpart::harness
