// The instruction-stream abstraction consumed by the core model.
//
// A trace is a sequence of memory operations separated by runs of
// non-memory instructions. Concrete sources live in src/workload (synthetic
// SPEC-calibrated generators); tests use hand-built scripted traces.
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace bwpart::cpu {

/// One memory operation plus the number of non-memory instructions that
/// precede it in program order.
struct TraceOp {
  std::uint64_t gap_nonmem = 0;  ///< non-memory instructions before this op
  Addr addr = 0;
  AccessType type = AccessType::Read;
  /// Data-dependent on an earlier load (pointer chasing): the core may not
  /// issue this access while an off-chip load is still outstanding. This is
  /// the knob that gives an application fractional memory-level parallelism.
  bool dependent = false;
};

/// Infinite instruction stream (the simulator runs for a fixed cycle count,
/// not to trace exhaustion, matching the paper's methodology).
class TraceSource {
 public:
  virtual ~TraceSource() = default;
  virtual TraceOp next() = 0;
};

}  // namespace bwpart::cpu
