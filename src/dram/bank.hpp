// Per-bank DRAM state in structure-of-arrays layout. Each parallel vector
// holds one field for every bank in the system ([channel][rank][bank]
// flattened), so the controller's scheduler scan and the event probes walk
// contiguous memory instead of striding over an array of bank objects. The
// update rules are the classic per-bank state machine: track the open row
// and the earliest tick at which each command class may next be issued; the
// channel engine layers rank- and bus-level constraints on top.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/assert.hpp"
#include "common/snapshot_io.hpp"
#include "dram/config.hpp"
#include "dram/timing_table.hpp"

namespace bwpart::dram {

class BankArray {
 public:
  BankArray() = default;
  explicit BankArray(std::size_t n)
      : open_(n, 0), row_(n, 0), next_act_(n, 0), next_rd_(n, 0),
        next_wr_(n, 0), next_pre_(n, 0) {}

  std::size_t size() const { return open_.size(); }

  bool row_open(std::size_t i) const { return open_[i] != 0; }
  std::uint64_t open_row(std::size_t i) const {
    BWPART_ASSERT(open_[i] != 0, "no open row");
    return row_[i];
  }
  /// The open-row value without the open-bank precondition (the protocol
  /// checker's precharge fold reads it right before closing).
  std::uint64_t row_value(std::size_t i) const { return row_[i]; }

  bool can_activate(std::size_t i, Tick now) const {
    return open_[i] == 0 && now >= next_act_[i];
  }
  bool can_read(std::size_t i, Tick now) const {
    return open_[i] != 0 && now >= next_rd_[i];
  }
  bool can_write(std::size_t i, Tick now) const {
    return open_[i] != 0 && now >= next_wr_[i];
  }
  bool can_precharge(std::size_t i, Tick now) const {
    return open_[i] != 0 && now >= next_pre_[i];
  }

  /// Earliest tick an activate could be accepted (row must also be closed).
  Tick next_activate_tick(std::size_t i) const { return next_act_[i]; }
  /// Earliest tick a read could be accepted (a row must also be open).
  Tick next_read_tick(std::size_t i) const { return next_rd_[i]; }
  /// Earliest tick a write could be accepted (a row must also be open).
  Tick next_write_tick(std::size_t i) const { return next_wr_[i]; }
  /// Earliest tick a precharge could be accepted (a row must also be open).
  Tick next_precharge_tick(std::size_t i) const { return next_pre_[i]; }

  void activate(std::size_t i, Tick now, std::uint64_t row,
                const CmdTimings& t) {
    BWPART_ASSERT(can_activate(i, now), "activate violates bank timing");
    open_[i] = 1;
    row_[i] = row;
    next_rd_[i] = now + t.act_to_col;
    next_wr_[i] = now + t.act_to_col;
    next_pre_[i] = now + t.act_to_pre;
  }

  /// Column read; with `auto_precharge` the bank closes itself as soon as
  /// tRTP and tRAS allow, and reopens after tRP.
  void read(std::size_t i, Tick now, bool auto_precharge,
            const CmdTimings& t) {
    BWPART_ASSERT(can_read(i, now), "read violates bank timing");
    next_pre_[i] = std::max(next_pre_[i], now + t.rd_to_pre);
    next_rd_[i] = now + t.col_to_col;
    next_wr_[i] = std::max(next_wr_[i], now + t.col_to_col);
    if (auto_precharge) close_at(i, next_pre_[i], t);
  }

  void write(std::size_t i, Tick now, bool auto_precharge,
             const CmdTimings& t) {
    BWPART_ASSERT(can_write(i, now), "write violates bank timing");
    // Precharge must wait for the write data plus recovery time.
    next_pre_[i] = std::max(next_pre_[i], now + t.wr_to_pre);
    next_rd_[i] = std::max(next_rd_[i], now + t.col_to_col);
    next_wr_[i] = now + t.col_to_col;
    if (auto_precharge) close_at(i, next_pre_[i], t);
  }

  void precharge(std::size_t i, Tick now, const CmdTimings& t) {
    BWPART_ASSERT(can_precharge(i, now), "precharge violates bank timing");
    close_at(i, now, t);
  }

  /// Refresh completion: bank is closed and unusable until now + tRFC.
  void refresh(std::size_t i, Tick now, const CmdTimings& t) {
    BWPART_ASSERT(open_[i] == 0, "refresh with open row");
    next_act_[i] = std::max(next_act_[i], now + t.rfc);
  }

  /// Serializes one bank's fields (same order the scalar layout used, so
  /// the stream stays a per-bank record sequence).
  void save_one(std::size_t i, snap::Writer& w) const {
    w.b(open_[i] != 0);
    w.u64(row_[i]);
    w.u64(next_act_[i]);
    w.u64(next_rd_[i]);
    w.u64(next_wr_[i]);
    w.u64(next_pre_[i]);
  }
  void restore_one(std::size_t i, snap::Reader& r) {
    open_[i] = r.b() ? 1 : 0;
    row_[i] = r.u64();
    next_act_[i] = r.u64();
    next_rd_[i] = r.u64();
    next_wr_[i] = r.u64();
    next_pre_[i] = r.u64();
  }

 private:
  void close_at(std::size_t i, Tick pre_start, const CmdTimings& t) {
    open_[i] = 0;
    next_act_[i] = std::max(next_act_[i], pre_start + t.pre_to_act);
  }

  // Parallel per-bank vectors, index = flattened bank.
  std::vector<std::uint8_t> open_;
  std::vector<std::uint64_t> row_;
  std::vector<Tick> next_act_;
  std::vector<Tick> next_rd_;
  std::vector<Tick> next_wr_;
  std::vector<Tick> next_pre_;
};

}  // namespace bwpart::dram
