// Simplified out-of-order core timing model.
//
// The model captures exactly the core behaviours the paper's analysis
// depends on: a ROB-bounded instruction window (memory-level parallelism is
// limited by how many misses fit in the window and by the MSHR file), an
// issue-width/ILP-bounded execution rate for non-memory work, posted stores
// through a store buffer, and in-order retirement that stalls on the oldest
// incomplete load. Together these reproduce the IPC = APC/API coupling
// (Eq. 1): when an application is memory-bound, its IPC is proportional to
// the rate the memory system serves its accesses.
//
// Instructions are consumed from a TraceSource; the paper's Table II core
// (5 GHz, 8-wide, 192-entry ROB, private 32K L1 / 256K L2) is the default.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>

#include "common/types.hpp"
#include "cpu/cache.hpp"
#include "cpu/trace.hpp"
#include "mem/controller.hpp"

namespace bwpart::cpu {

struct CoreConfig {
  std::uint32_t rob_size = 192;
  /// Maximum instructions fetched/retired per cycle.
  double issue_width = 8.0;
  /// ILP-limited throughput of the non-memory instruction stream
  /// (instructions per cycle; <= issue_width). Per-benchmark knob.
  double nonmem_ipc = 8.0;
  /// Outstanding off-chip load misses (memory-level parallelism cap).
  std::uint32_t mshrs = 16;
  /// Outstanding posted stores.
  std::uint32_t store_buffer = 16;
  Cycle l1_latency = 5;   ///< 1 ns at 5 GHz
  Cycle l2_latency = 25;  ///< 5 ns at 5 GHz
  /// When true, trace addresses run through L1/L2 and only misses go
  /// off-chip (address-stream mode). When false, every trace op is an
  /// off-chip access (miss-stream mode, used for calibrated experiments).
  bool model_caches = false;
  CacheGeometry l1 = CacheGeometry::l1_default();
  CacheGeometry l2 = CacheGeometry::l2_default();
};

struct CoreStats {
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;       ///< retired
  std::uint64_t offchip_reads = 0;      ///< sent to the controller
  std::uint64_t offchip_writes = 0;
  std::uint64_t rob_stall_cycles = 0;   ///< fetch blocked: window full
  std::uint64_t mem_stall_cycles = 0;   ///< retire blocked on a load
  std::uint64_t queue_stall_cycles = 0; ///< blocked on MSHR/queue/store buf

  double ipc() const {
    return cycles == 0 ? 0.0
                       : static_cast<double>(instructions) /
                             static_cast<double>(cycles);
  }
  std::uint64_t offchip_accesses() const {
    return offchip_reads + offchip_writes;
  }
  /// Memory accesses per cycle — the APC of Eq. 1/2.
  double apc() const {
    return cycles == 0 ? 0.0
                       : static_cast<double>(offchip_accesses()) /
                             static_cast<double>(cycles);
  }
  /// Memory accesses per instruction — the API of Eq. 1.
  double api() const {
    return instructions == 0 ? 0.0
                             : static_cast<double>(offchip_accesses()) /
                                   static_cast<double>(instructions);
  }
};

/// How a sleeping core's deferred cycles must be replayed, and which events
/// can invalidate the sleep proof early. Stall flavors lean on external
/// state a completion can free; the idle replay reads nothing outside the
/// core, so its proof survives completions untouched. The deterministic-
/// window replay reads the load queue, so the owner must replay its range
/// *before* delivering one of this application's read completions (which
/// mutate load state) and wake the core there.
enum class SleepFlavor : std::uint8_t {
  kStallOwn = 0,     ///< blocked; only this app's completions can unblock
  kStallShared = 1,  ///< blocked on shared queue space; any completion can
  kIdle = 2,         ///< empty window accumulating sub-1 fetch budget
  kDet = 3,          ///< deterministic window run; own read completions wake
};

/// Result of OoOCore::prove_sleep(): the first cycle the core must tick
/// again, and the replay/wake semantics of the cycles in between.
struct WakeProof {
  Cycle wake = 0;
  SleepFlavor flavor = SleepFlavor::kStallOwn;
};

/// Memo of the fractional fetch-budget orbit for one nonmem_ipc value
/// (defined in core.cpp; shared across cores process-wide).
struct FbOrbit;

class OoOCore {
 public:
  /// Cap on the cycles next_det_wake() will prove in one call; a longer run
  /// simply re-proves after waking (bounds the cost of a proof that ends up
  /// truncated by the run-window edge). Used when no off-chip read is
  /// undelivered — then no event can truncate the proof, so every proved
  /// cycle is replayed from the memo and long proofs amortize perfectly.
  static constexpr Cycle kDetLookahead = 4096;
  /// Lookahead while off-chip reads are in flight: their completions
  /// truncate the proof (forcing a cycle-by-cycle replay of the partial
  /// range and a fresh proof), so proving far past the typical completion
  /// gap only burns mirror cycles that are thrown away.
  static constexpr Cycle kDetShortLookahead = 128;

  OoOCore(AppId app, const CoreConfig& cfg, TraceSource& trace,
          mem::MemoryController& controller);

  /// Advances one CPU cycle. The owner must also tick the controller once
  /// per cycle and route its completion callbacks to on_mem_complete().
  void tick(Cycle now);

  /// Earliest cycle > `now` at which tick() could make progress (retire or
  /// fetch an instruction), given the state after ticking at `now` and
  /// assuming no memory completion arrives first. Returns now + 1 when the
  /// core is not provably stalled, the completion cycle of the oldest load
  /// when retirement is waiting on a known completion, and kNoCycle when
  /// the core is blocked purely on external events (an undelivered
  /// completion, or controller backpressure that only a completion can
  /// clear). The owner may replace the cycles in between with one
  /// fast_forward_stall() call.
  Cycle next_wake(Cycle now) const;

  /// Earliest cycle > `now` at which the fetch budget can reach one whole
  /// instruction. Refines next_wake()'s "not provably stalled" answer for a
  /// core with an empty window and a sub-1 fetch rate: until the fractional
  /// budget crosses 1, a tick changes nothing but the budget, so the owner
  /// may replace those cycles with one fast_forward_idle() call. Returns
  /// now + 1 when no such proof holds.
  Cycle next_fetch_wake(Cycle now) const;

  /// Replays `n` consecutive budget-accumulation cycles: cycle counters
  /// advance and the fetch budget accumulates add-for-add (bit-identical to
  /// n tick() calls), with no instruction and no stall flag. Precondition:
  /// next_fetch_wake() proved the window empty and every intermediate
  /// budget value below 1.
  void fast_forward_idle(Cycle n);

  /// Earliest cycle > `now` at which tick() would attempt to execute a
  /// memory operation. Between memory-op attempts the core's evolution is
  /// fully deterministic given the loads already in the window (their
  /// completion cycles, known or still pending, are data, not events):
  /// retirement drains completed loads and blocks on pending ones, fetch
  /// consumes trace gap. Everything up to (excluding) the returned cycle
  /// can be replayed by fast_forward_det() without consulting the memory
  /// system — provided no new completion for this application's reads is
  /// delivered inside the range (the owner must replay-then-wake at such a
  /// delivery). Returns now + 1 when the memory op would be attempted on
  /// the very next cycle, and kNoCycle when the window provably freezes
  /// (retirement blocked on a pending load, window full) — the cycles
  /// after the frozen point follow the fast_forward_stall() closed form.
  /// The proof mirrors at most kDetLookahead cycles.
  Cycle next_det_wake(Cycle now) const;

  /// Replays the `n` consecutive cycles [start, start + n) of a
  /// deterministic window run: retire/fetch sequence numbers, retired
  /// loads, instruction and stall counters, and both fractional budgets
  /// advance bit-identically to n tick() calls (`start` anchors the
  /// load-completion comparisons). Precondition: next_det_wake() proved no
  /// memory-op attempt within the range and no read completion was
  /// delivered inside it.
  void fast_forward_det(Cycle start, Cycle n);

  /// One-shot sleep proof combining next_wake() with the idle and
  /// deterministic-window refinements, plus the completion-sensitivity
  /// classification: a stalled
  /// core blocked on the shared transaction queue can be freed by any
  /// application's completion, while MSHR, store-buffer, per-app-queue and
  /// dependent-load blocks clear only on this application's completions.
  WakeProof prove_sleep(Cycle now) const;

  /// Replays `n` consecutive provably-stalled cycles in closed form:
  /// cycle/stall counters advance exactly as n tick() calls would, and the
  /// fractional issue budgets end bit-identical (the fetch budget's
  /// sub-1-IPC accumulation is replayed exactly). Precondition: next_wake()
  /// proved the next n cycles make no progress and no completion is
  /// delivered within them.
  void fast_forward_stall(Cycle n);

  /// Completion delivery for this core's controller requests.
  void on_mem_complete(const mem::MemRequest& req, Cycle done_cpu);

  AppId app() const { return app_; }
  const CoreStats& stats() const { return stats_; }

  /// Observability probes (instantaneous microarchitectural occupancy; pure
  /// reads, sampled by the epoch time-series).
  /// Instructions currently in the window (fetched, not yet retired).
  std::uint64_t window_occupancy() const { return fetch_seq_ - retire_seq_; }
  /// Off-chip load misses outstanding right now (instantaneous MLP).
  std::uint32_t offchip_loads_inflight() const {
    return offchip_loads_inflight_;
  }
  /// Zeroes the measurement counters at a phase boundary without touching
  /// microarchitectural state (ROB, caches, in-flight requests).
  void reset_stats();

  /// Snapshot hooks: window sequence numbers, fractional budgets, the
  /// current trace op, the load queue (with controller request ids — slot
  /// wiring is restored by the controller's own hook), in-flight counters,
  /// stats and both private caches. The det-proof memo is deliberately not
  /// serialized: restore invalidates it, and a missing memo only makes the
  /// next fast_forward_det() fall back to the bit-identical replay path.
  void save_state(snap::Writer& w) const;
  void restore_state(snap::Reader& r);

  const Cache& l1() const { return l1_; }
  const Cache& l2() const { return l2_; }

 private:
  struct Load {
    std::uint64_t seq = 0;               ///< instruction sequence number
    std::uint64_t req_id = 0;            ///< controller id (off-chip only)
    Cycle done_at = kNoCycle;            ///< completion cycle; kNoCycle = pending
    bool offchip = false;
  };

  void do_retire(Cycle now);
  void do_fetch(Cycle now);
  /// Executes the memory op at the fetch head. Returns false if it must
  /// stall (MSHR/store-buffer/controller backpressure).
  bool execute_mem_op(Cycle now);
  /// Side-effect-free mirror of execute_mem_op's stall decision: true iff
  /// calling it now would return false. With model_caches the up-front
  /// worst-case resource reservation is the only abort point, so the check
  /// never needs to touch cache state.
  bool mem_op_would_stall() const;
  void advance_trace();

  AppId app_;
  CoreConfig cfg_;
  TraceSource& trace_;
  mem::MemoryController& controller_;
  Cache l1_;
  Cache l2_;

  std::uint64_t fetch_seq_ = 0;
  std::uint64_t retire_seq_ = 0;
  double fetch_budget_ = 0.0;
  double retire_budget_ = 0.0;

  TraceOp current_op_{};
  std::uint64_t next_mem_seq_ = 0;

  std::deque<Load> loads_;  ///< in program order
  std::uint32_t offchip_loads_inflight_ = 0;
  std::uint32_t stores_inflight_ = 0;

  /// Memo written by next_det_wake(): the proof loop already simulates
  /// every cycle it proves clean, so it records the architectural end state
  /// of the proved range and fast_forward_det() applies it in O(1) instead
  /// of replaying the same cycles a second time. Keyed on the full start
  /// state; any mismatch (e.g. a replay truncated early by a completion or
  /// the run-window edge) falls back to the cycle-by-cycle replay. When
  /// `frozen` is set the proved prefix ends in a state that cannot make
  /// progress, and cycles past it replay via fast_forward_stall().
  struct DetProof {
    std::uint64_t start_fetch_seq = 0;
    std::uint64_t start_retire_seq = 0;
    double start_fetch_budget = 0.0;
    double start_retire_budget = 0.0;
    Cycle cycles = 0;  ///< length of the proved prefix
    std::uint64_t end_fetch_seq = 0;
    std::uint64_t end_retire_seq = 0;
    double end_fetch_budget = 0.0;
    double end_retire_budget = 0.0;
    std::size_t loads_retired = 0;   ///< front loads popped in the prefix
    std::uint64_t mem_stalls = 0;    ///< retire-blocked cycles in the prefix
    std::uint64_t rob_stalls = 0;    ///< ROB-full cycles in the prefix
    bool frozen = false;
    bool valid = false;
  };
  mutable DetProof det_proof_;

  /// Shared memo of the fetch-budget orbit for this core's nonmem_ipc (see
  /// FbOrbit in core.cpp). Acquired lazily by next_det_wake(); one table
  /// per distinct ipc value process-wide. Mirror-side only — never part of
  /// architectural state.
  mutable std::shared_ptr<const FbOrbit> orbit_;

  CoreStats stats_;
};

}  // namespace bwpart::cpu
