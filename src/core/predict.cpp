#include "core/predict.hpp"

#include <cmath>

#include "common/assert.hpp"

namespace bwpart::core {

double Prediction::metric(Metric m) const {
  switch (m) {
    case Metric::HarmonicWeightedSpeedup: return hsp;
    case Metric::MinFairness: return min_fairness;
    case Metric::WeightedSpeedup: return wsp;
    case Metric::IpcSum: return ipcsum;
  }
  BWPART_ASSERT(false, "unknown metric");
  return 0.0;
}

Prediction predict(Scheme s, std::span<const AppParams> apps, double b) {
  Prediction p;
  p.apc_shared = analytic_allocation(s, apps, b);
  p.ipc_shared.reserve(apps.size());
  std::vector<double> ipc_alone;
  ipc_alone.reserve(apps.size());
  for (std::size_t i = 0; i < apps.size(); ++i) {
    p.ipc_shared.push_back(apps[i].ipc_at(p.apc_shared[i]));
    ipc_alone.push_back(apps[i].ipc_alone());
  }
  // Priority schemes can hand an app literally zero bandwidth; the
  // harmonic mean is then zero (complete starvation) by continuity.
  bool starved = false;
  for (double x : p.ipc_shared) {
    if (x <= 0.0) starved = true;
  }
  p.hsp = starved ? 0.0
                  : harmonic_weighted_speedup(p.ipc_shared, ipc_alone);
  p.wsp = weighted_speedup(p.ipc_shared, ipc_alone);
  p.ipcsum = ipc_sum(p.ipc_shared);
  p.min_fairness = min_fairness(p.ipc_shared, ipc_alone);
  return p;
}

double hsp_squareroot_closed_form(std::span<const AppParams> apps, double b) {
  BWPART_ASSERT(!apps.empty(), "empty workload");
  double sum_sqrt = 0.0;
  for (const AppParams& a : apps) sum_sqrt += std::sqrt(a.apc_alone);
  return static_cast<double>(apps.size()) * b / (sum_sqrt * sum_sqrt);
}

double wsp_squareroot_closed_form(std::span<const AppParams> apps, double b) {
  BWPART_ASSERT(!apps.empty(), "empty workload");
  double sum_inv_sqrt = 0.0;
  double sum_sqrt = 0.0;
  for (const AppParams& a : apps) {
    sum_inv_sqrt += 1.0 / std::sqrt(a.apc_alone);
    sum_sqrt += std::sqrt(a.apc_alone);
  }
  return b * sum_inv_sqrt / (static_cast<double>(apps.size()) * sum_sqrt);
}

double hsp_proportional_closed_form(std::span<const AppParams> apps,
                                    double b) {
  BWPART_ASSERT(!apps.empty(), "empty workload");
  double sum_apc = 0.0;
  for (const AppParams& a : apps) sum_apc += a.apc_alone;
  return b / sum_apc;
}

}  // namespace bwpart::core
