#include "dram/power.hpp"

#include <gtest/gtest.h>

namespace bwpart::dram {
namespace {

TEST(Power, ZeroStatsGiveOnlyBackground) {
  DramStats stats;
  stats.ticks = 200'000'000;  // one second at 200 MHz
  const DramConfig cfg = DramConfig::ddr2_400();
  const EnergyParams params;
  const EnergyBreakdown e = estimate_energy(stats, cfg, params);
  EXPECT_DOUBLE_EQ(e.activate_nj, 0.0);
  EXPECT_DOUBLE_EQ(e.read_nj, 0.0);
  // 4 ranks * 55 mW * 1 s = 220 mJ = 2.2e8 nJ.
  EXPECT_NEAR(e.background_nj, 220e6, 1e3);
  EXPECT_NEAR(e.average_power_mw(1.0), 220.0, 1e-6);
}

TEST(Power, EnergyScalesWithCommandCounts) {
  DramStats a;
  a.activates = 1000;
  a.reads = 800;
  a.writes = 200;
  a.refreshes = 10;
  a.ticks = 1'000'000;
  DramStats b = a;
  b.activates *= 2;
  b.reads *= 2;
  b.writes *= 2;
  b.refreshes *= 2;
  const DramConfig cfg = DramConfig::ddr2_400();
  const EnergyBreakdown ea = estimate_energy(a, cfg);
  const EnergyBreakdown eb = estimate_energy(b, cfg);
  EXPECT_NEAR(eb.activate_nj, 2.0 * ea.activate_nj, 1e-9);
  EXPECT_NEAR(eb.read_nj, 2.0 * ea.read_nj, 1e-9);
  EXPECT_NEAR(eb.write_nj, 2.0 * ea.write_nj, 1e-9);
  EXPECT_NEAR(eb.refresh_nj, 2.0 * ea.refresh_nj, 1e-9);
  EXPECT_DOUBLE_EQ(eb.background_nj, ea.background_nj);  // same window
}

TEST(Power, KnownValues) {
  DramStats stats;
  stats.activates = 100;
  stats.reads = 60;
  stats.writes = 40;
  stats.refreshes = 2;
  stats.ticks = 200'000;  // 1 ms at 200 MHz
  EnergyParams p;
  p.act_pre_nj = 2.0;
  p.read_nj = 1.0;
  p.write_nj = 1.5;
  p.refresh_nj = 30.0;
  p.background_mw_per_rank = 50.0;
  const DramConfig cfg = DramConfig::ddr2_400();  // 4 ranks, 1 channel
  const EnergyBreakdown e = estimate_energy(stats, cfg, p);
  EXPECT_DOUBLE_EQ(e.activate_nj, 200.0);
  EXPECT_DOUBLE_EQ(e.read_nj, 60.0);
  EXPECT_DOUBLE_EQ(e.write_nj, 60.0);
  EXPECT_DOUBLE_EQ(e.refresh_nj, 60.0);
  // 4 ranks * 50 mW * 1 ms = 0.2 mJ = 2e5 nJ.
  EXPECT_NEAR(e.background_nj, 2e5, 1e-6);
  EXPECT_NEAR(e.total_nj(), 200.0 + 60 + 60 + 60 + 2e5, 1e-6);
  EXPECT_NEAR(e.nj_per_access(100), e.total_nj() / 100.0, 1e-9);
}

TEST(Power, HigherBusClockShrinksWindowForSameTicks) {
  DramStats stats;
  stats.ticks = 1'000'000;
  const EnergyBreakdown slow =
      estimate_energy(stats, DramConfig::ddr2_400());
  const EnergyBreakdown fast =
      estimate_energy(stats, DramConfig::ddr2_1600());
  // Same tick count is 4x less wall time at 800 MHz: less background.
  EXPECT_NEAR(slow.background_nj, 4.0 * fast.background_nj,
              slow.background_nj * 1e-9);
}

TEST(Power, EndToEndEnergyFromLiveSystem) {
  DramConfig cfg = DramConfig::ddr2_400();
  cfg.enable_refresh = false;
  DramSystem d(cfg);
  Tick now = 0;
  // Issue a handful of close-page accesses.
  for (std::uint32_t b = 0; b < 4; ++b) {
    const Location loc{0, 0, b, 1, 0};
    Command act{CommandType::Activate, loc, 0, b};
    for (;; ++now) {
      d.tick(now);
      if (d.can_issue(act, now)) {
        d.issue(act, now);
        ++now;
        break;
      }
    }
    Command rd{CommandType::ReadAp, loc, 0, b};
    for (;; ++now) {
      d.tick(now);
      if (d.can_issue(rd, now)) {
        d.issue(rd, now);
        ++now;
        break;
      }
    }
  }
  const EnergyBreakdown e = estimate_energy(d.stats(), cfg);
  EXPECT_GT(e.activate_nj, 0.0);
  EXPECT_GT(e.read_nj, 0.0);
  EXPECT_DOUBLE_EQ(e.write_nj, 0.0);
  EXPECT_GT(e.total_nj(), e.activate_nj + e.read_nj);  // background adds
}

}  // namespace
}  // namespace bwpart::dram
