// Trace record/replay: capture a calibrated synthetic miss stream to a
// file, replay it through the simulator, and verify the replayed run is
// bit-identical to the live-generated one. This is the workflow for
// importing externally captured traces (convert them to the bwpt format
// and drive FileTraceSource).
//
//   ./examples/trace_replay [ops]
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "cpu/core.hpp"
#include "mem/controller.hpp"
#include "workload/spec_table.hpp"
#include "workload/synthetic_trace.hpp"
#include "workload/trace_io.hpp"

namespace {

using namespace bwpart;

struct RunStats {
  std::uint64_t instructions = 0;
  std::uint64_t accesses = 0;
};

RunStats simulate(cpu::TraceSource& trace, Cycle cycles) {
  mem::MemoryController controller(
      dram::DramConfig::ddr2_400(), Frequency::from_ghz(5.0), 1,
      std::make_unique<mem::FcfsScheduler>());
  cpu::CoreConfig cfg;
  cfg.nonmem_ipc = 2.0;
  cpu::OoOCore core(0, cfg, trace, controller);
  controller.set_completion_callback(
      [&core](const mem::MemRequest& r, Cycle done) {
        core.on_mem_complete(r, done);
      });
  for (Cycle t = 0; t < cycles; ++t) {
    core.tick(t);
    controller.tick(t);
  }
  return {core.stats().instructions, controller.app_stats(0).served()};
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t ops =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 50'000;
  const char* path = "/tmp/bwpart_demo_trace.bwpt";

  // 1. Record hmmer's synthetic miss stream.
  auto live = workload::SyntheticTraceGenerator::from_benchmark(
      workload::find_benchmark("hmmer"), 0, 7);
  workload::record_trace(live, path, ops);
  std::printf("Recorded %llu hmmer ops to %s\n",
              static_cast<unsigned long long>(ops), path);

  // 2. Run the live generator and the replay through identical machines.
  auto live2 = workload::SyntheticTraceGenerator::from_benchmark(
      workload::find_benchmark("hmmer"), 0, 7);
  workload::FileTraceSource replay(path);
  const Cycle cycles = 1'000'000;
  const RunStats a = simulate(live2, cycles);
  const RunStats b = simulate(replay, cycles);

  std::printf("live run:   %llu instructions, %llu off-chip accesses\n",
              static_cast<unsigned long long>(a.instructions),
              static_cast<unsigned long long>(a.accesses));
  std::printf("replay run: %llu instructions, %llu off-chip accesses\n",
              static_cast<unsigned long long>(b.instructions),
              static_cast<unsigned long long>(b.accesses));
  std::printf(a.instructions == b.instructions && a.accesses == b.accesses
                  ? "bit-identical: yes\n"
                  : "bit-identical: NO (replay diverged!)\n");
  std::remove(path);
  return a.instructions == b.instructions ? 0 : 1;
}
