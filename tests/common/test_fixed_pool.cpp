#include "common/fixed_pool.hpp"

#include <gtest/gtest.h>

#include <cstdint>

#include "common/snapshot_io.hpp"

namespace bwpart {
namespace {

TEST(FixedPool, AcquireExtendsThenRecyclesLifo) {
  FixedPool<int> pool(4);
  EXPECT_EQ(pool.capacity(), 4u);
  EXPECT_EQ(pool.acquire(), 0u);
  EXPECT_EQ(pool.acquire(), 1u);
  EXPECT_EQ(pool.acquire(), 2u);
  EXPECT_EQ(pool.high_water(), 3u);
  pool.release(1);
  pool.release(0);
  // LIFO: the most recently released slot comes back first.
  EXPECT_EQ(pool.acquire(), 0u);
  EXPECT_EQ(pool.acquire(), 1u);
  // Recycling never moved the high-water mark.
  EXPECT_EQ(pool.high_water(), 3u);
  EXPECT_EQ(pool.acquire(), 3u);
  EXPECT_EQ(pool.live(), 4u);
}

TEST(FixedPool, EntriesKeepValuesAcrossRecycle) {
  FixedPool<std::uint64_t> pool(2);
  const std::uint32_t a = pool.acquire();
  pool[a] = 42;
  pool.release(a);
  const std::uint32_t b = pool.acquire();
  EXPECT_EQ(a, b);
  // Stale contents survive: the pool never clears on release.
  EXPECT_EQ(pool[b], 42u);
}

TEST(FixedPool, SaveRestoreRoundTrip) {
  FixedPool<std::uint32_t> pool(8);
  for (std::uint32_t i = 0; i < 5; ++i) pool[pool.acquire()] = i * 10;
  pool.release(3);
  pool.release(1);

  snap::Writer w;
  pool.save(w, [](snap::Writer& ww, const std::uint32_t& v) { ww.u32(v); });

  FixedPool<std::uint32_t> restored(8);
  snap::Reader r(w.bytes());
  restored.restore(r,
                   [](snap::Reader& rr, std::uint32_t& v) { v = rr.u32(); });
  EXPECT_EQ(restored.high_water(), 5u);
  EXPECT_EQ(restored.live(), 3u);
  EXPECT_EQ(restored.free_count(), 2u);
  for (std::uint32_t i = 0; i < 5; ++i) EXPECT_EQ(restored[i], i * 10);
  // Free-list order restored verbatim: LIFO pops 1 then 3.
  EXPECT_EQ(restored.acquire(), 1u);
  EXPECT_EQ(restored.acquire(), 3u);
  EXPECT_EQ(restored.acquire(), 5u);
}

TEST(FixedPool, RestoreRejectsOversizedSnapshot) {
  FixedPool<std::uint32_t> big(4);
  for (int i = 0; i < 4; ++i) big[big.acquire()] = 7;
  snap::Writer w;
  big.save(w, [](snap::Writer& ww, const std::uint32_t& v) { ww.u32(v); });

  FixedPool<std::uint32_t> small(2);
  snap::Reader r(w.bytes());
  EXPECT_THROW(
      small.restore(r,
                    [](snap::Reader& rr, std::uint32_t& v) { v = rr.u32(); }),
      snap::SnapshotError);
}

}  // namespace
}  // namespace bwpart
