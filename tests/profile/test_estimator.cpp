#include "profile/alone_profiler.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "profile/interference.hpp"

namespace bwpart::profile {
namespace {

TEST(EstimateAlone, NoInterferenceReproducesSharedRates) {
  AppCounters c;
  c.accesses = 5000;
  c.instructions = 1'000'000;
  c.interference_cycles = 0;
  const core::AppParams p = estimate_alone(c, 1'000'000);
  EXPECT_DOUBLE_EQ(p.apc_alone, 0.005);
  EXPECT_DOUBLE_EQ(p.api, 0.005);
}

TEST(EstimateAlone, InterferenceSubtractionMatchesEq12And13) {
  // Eq. 13: T_alone = T_shared - T_interference; Eq. 12: APC = N / T_alone.
  AppCounters c;
  c.accesses = 4000;
  c.instructions = 800'000;
  c.interference_cycles = 500'000;
  const core::AppParams p = estimate_alone(c, 1'000'000);
  EXPECT_DOUBLE_EQ(p.apc_alone, 4000.0 / 500'000.0);
  EXPECT_DOUBLE_EQ(p.api, 0.005);
}

TEST(EstimateAlone, InterferenceClampedBelowWindow) {
  AppCounters c;
  c.accesses = 100;
  c.instructions = 1000;
  c.interference_cycles = 2'000'000;  // pathological over-attribution
  const core::AppParams p = estimate_alone(c, 1'000'000);
  EXPECT_TRUE(std::isfinite(p.apc_alone));
  EXPECT_GT(p.apc_alone, 0.0);
}

TEST(EstimateAlone, ApiUnaffectedByInterference) {
  // API is a program property; the interference correction must only
  // rescale time, never the access/instruction ratio.
  AppCounters a{1000, 100'000, 0};
  AppCounters b{1000, 100'000, 300'000};
  EXPECT_DOUBLE_EQ(estimate_alone(a, 500'000).api,
                   estimate_alone(b, 500'000).api);
}

TEST(InterferenceCounters, AccumulateAndReset) {
  InterferenceCounters ic(3);
  ic.on_interference(0, 10);
  ic.on_interference(0, 5);
  ic.on_interference(2, 7);
  EXPECT_EQ(ic.interference_cycles(0), 15u);
  EXPECT_EQ(ic.interference_cycles(1), 0u);
  EXPECT_EQ(ic.interference_cycles(2), 7u);
  ic.reset();
  EXPECT_EQ(ic.interference_cycles(0), 0u);
}

TEST(RollingProfiler, NoUpdateBeforePeriodBoundary) {
  RollingProfiler rp(2, 1000);
  const std::vector<AppCounters> c{{10, 1000, 0}, {20, 2000, 0}};
  EXPECT_FALSE(rp.update(500, c).has_value());
  EXPECT_TRUE(rp.update(1000, c).has_value());
}

TEST(RollingProfiler, FirstWindowIsUnsmoothed) {
  RollingProfiler rp(1, 1000, 0.5);
  const std::vector<AppCounters> c{{100, 10'000, 0}};
  const auto est = rp.update(1000, c);
  ASSERT_TRUE(est.has_value());
  EXPECT_DOUBLE_EQ((*est)[0].apc_alone, 0.1);
  EXPECT_DOUBLE_EQ((*est)[0].api, 0.01);
}

TEST(RollingProfiler, EmaSmoothingBlendsWindows) {
  RollingProfiler rp(1, 1000, 0.5);
  std::vector<AppCounters> c{{100, 10'000, 0}};
  (void)rp.update(1000, c);
  // Second window doubles the rate: cumulative 300 accesses by t=2000.
  c[0].accesses = 300;
  c[0].instructions = 20'000;
  const auto est = rp.update(2000, c);
  ASSERT_TRUE(est.has_value());
  // Fresh estimate 0.2, previous 0.1, smoothing 0.5 -> 0.15.
  EXPECT_DOUBLE_EQ((*est)[0].apc_alone, 0.15);
}

TEST(RollingProfiler, DifferentiatesCumulativeCounters) {
  RollingProfiler rp(1, 1000, 1.0);
  std::vector<AppCounters> c{{100, 10'000, 100}};
  (void)rp.update(1000, c);
  c[0] = {150, 15'000, 400};  // window delta: 50 accesses, 300 interference
  const auto est = rp.update(2000, c);
  ASSERT_TRUE(est.has_value());
  EXPECT_DOUBLE_EQ((*est)[0].apc_alone, 50.0 / (1000.0 - 300.0));
}

TEST(RollingProfiler, SkipsToNextBoundaryAfterLateUpdate) {
  RollingProfiler rp(1, 1000);
  const std::vector<AppCounters> c{{10, 100, 0}};
  EXPECT_TRUE(rp.update(2500, c).has_value());
  // Boundary advanced past 2500; next update before 3000 is ignored.
  EXPECT_FALSE(rp.update(2900, c).has_value());
  EXPECT_TRUE(rp.update(3000, c).has_value());
}

}  // namespace
}  // namespace bwpart::profile
