// Minimal recursive-descent JSON parser for validating the observability
// subsystem's exported documents in tests. Supports the full value grammar
// the exporters emit (objects, arrays, strings with escapes, numbers,
// true/false/null); parse failures throw std::runtime_error with a byte
// offset so a malformed export pinpoints itself.
#pragma once

#include <cctype>
#include <cstddef>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace bwpart::testjson {

struct Value;
using ValuePtr = std::shared_ptr<Value>;

struct Value {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool b = false;
  double num = 0.0;
  std::string str;
  std::vector<ValuePtr> arr;
  std::map<std::string, ValuePtr> obj;

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }

  /// Object member access; throws when absent or not an object.
  const Value& at(const std::string& key) const {
    if (kind != Kind::kObject) throw std::runtime_error("not an object");
    const auto it = obj.find(key);
    if (it == obj.end()) throw std::runtime_error("missing key: " + key);
    return *it->second;
  }
  bool has(const std::string& key) const {
    return kind == Kind::kObject && obj.count(key) != 0;
  }
  const Value& operator[](std::size_t i) const {
    if (kind != Kind::kArray) throw std::runtime_error("not an array");
    return *arr.at(i);
  }
  std::size_t size() const {
    return kind == Kind::kArray ? arr.size() : obj.size();
  }
};

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  ValuePtr parse() {
    ValuePtr v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing garbage");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("JSON parse error at byte " +
                             std::to_string(pos_) + ": " + what);
  }
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }
  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end");
    return text_[pos_];
  }
  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }
  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool consume_word(std::string_view w) {
    if (text_.substr(pos_, w.size()) == w) {
      pos_ += w.size();
      return true;
    }
    return false;
  }

  ValuePtr value() {
    skip_ws();
    auto v = std::make_shared<Value>();
    const char c = peek();
    if (c == '{') {
      v->kind = Value::Kind::kObject;
      ++pos_;
      skip_ws();
      if (!consume('}')) {
        do {
          skip_ws();
          std::string key = string_body();
          skip_ws();
          expect(':');
          v->obj.emplace(std::move(key), value());
          skip_ws();
        } while (consume(','));
        expect('}');
      }
    } else if (c == '[') {
      v->kind = Value::Kind::kArray;
      ++pos_;
      skip_ws();
      if (!consume(']')) {
        do {
          v->arr.push_back(value());
          skip_ws();
        } while (consume(','));
        expect(']');
      }
    } else if (c == '"') {
      v->kind = Value::Kind::kString;
      v->str = string_body();
    } else if (consume_word("true")) {
      v->kind = Value::Kind::kBool;
      v->b = true;
    } else if (consume_word("false")) {
      v->kind = Value::Kind::kBool;
      v->b = false;
    } else if (consume_word("null")) {
      v->kind = Value::Kind::kNull;
    } else {
      v->kind = Value::Kind::kNumber;
      v->num = number();
    }
    return v;
  }

  std::string string_body() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("bad \\u escape");
          const std::string hex(text_.substr(pos_, 4));
          pos_ += 4;
          const unsigned long cp = std::stoul(hex, nullptr, 16);
          // Exporters only \u-escape control characters (< 0x20); that is
          // all this parser needs to map back.
          if (cp > 0x7f) fail("non-ASCII \\u escape unsupported");
          out.push_back(static_cast<char>(cp));
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  double number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    return std::stod(std::string(text_.substr(start, pos_ - start)));
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

inline ValuePtr parse(std::string_view text) { return Parser(text).parse(); }

}  // namespace bwpart::testjson
