// Way-partitioned shared last-level cache — the paper's footnote 1
// extension: in a shared-L2 CMP an application's API becomes
// API_shared (a function of its cache-capacity share), and the bandwidth
// model applies unchanged with API_shared in place of API.
//
// Partitioning follows the classic way-partitioning (UCP-style static
// allocation): an application may *hit* on any way but may only *allocate*
// into the ways it owns, so its effective capacity is ways_owned/ways of
// the cache.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.hpp"
#include "cpu/cache.hpp"

namespace bwpart::cpu {

class SharedCache {
 public:
  SharedCache(const CacheGeometry& geom, std::uint32_t num_apps);

  /// Assigns each application a number of ways; the sum must equal the
  /// cache associativity. Lines already resident stay where they are (they
  /// age out naturally under the new allocation).
  void set_way_partition(std::span<const std::uint32_t> ways_per_app);

  /// Equal split (associativity must be divisible by the app count).
  void partition_equally();

  Cache::Outcome access(AppId app, Addr addr, AccessType type);

  bool probe(Addr addr) const;
  void invalidate_all();

  const CacheGeometry& geometry() const { return geom_; }
  std::uint64_t hits(AppId app) const;
  std::uint64_t misses(AppId app) const;
  double hit_rate(AppId app) const;
  /// Number of lines currently resident that `app` allocated.
  std::uint64_t occupancy(AppId app) const;
  void reset_stats();

 private:
  struct Line {
    std::uint64_t tag = 0;
    std::uint64_t lru_stamp = 0;
    AppId owner = kNoApp;  ///< app that allocated the line
    bool valid = false;
    bool dirty = false;
  };

  std::uint64_t tag_of(Addr addr) const {
    return addr / geom_.line_bytes / sets_;
  }
  std::uint32_t set_of(Addr addr) const {
    return static_cast<std::uint32_t>((addr / geom_.line_bytes) % sets_);
  }

  CacheGeometry geom_;
  std::uint32_t sets_;
  std::uint32_t num_apps_;
  std::vector<Line> lines_;              // [set][way]
  std::vector<std::uint32_t> way_owner_;  // [way] -> app owning that way
  std::vector<std::uint64_t> hits_;
  std::vector<std::uint64_t> misses_;
  std::uint64_t stamp_ = 0;
};

}  // namespace bwpart::cpu
