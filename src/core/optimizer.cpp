#include "core/optimizer.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/assert.hpp"

namespace bwpart::core {

std::vector<double> project_capped_simplex(std::span<const double> y,
                                           std::span<const double> caps,
                                           double total) {
  BWPART_ASSERT(y.size() == caps.size(), "projection arity mismatch");
  const double cap_sum = std::accumulate(caps.begin(), caps.end(), 0.0);
  BWPART_ASSERT(total <= cap_sum + 1e-12, "infeasible projection target");
  // Find lambda with sum_i clamp(y_i - lambda, 0, cap_i) == total by
  // bisection; the sum is continuous and non-increasing in lambda.
  double lo = -1.0, hi = 1.0;
  auto mass = [&](double lambda) {
    double s = 0.0;
    for (std::size_t i = 0; i < y.size(); ++i) {
      s += std::clamp(y[i] - lambda, 0.0, caps[i]);
    }
    return s;
  };
  for (double v : y) {
    lo = std::min(lo, v - cap_sum - 1.0);
    hi = std::max(hi, v + 1.0);
  }
  for (int iter = 0; iter < 200; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (mass(mid) > total) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  const double lambda = 0.5 * (lo + hi);
  std::vector<double> out(y.size());
  for (std::size_t i = 0; i < y.size(); ++i) {
    out[i] = std::clamp(y[i] - lambda, 0.0, caps[i]);
  }
  return out;
}

std::vector<double> optimize_allocation(const AllocationObjective& objective,
                                        std::span<const AppParams> apps,
                                        double b,
                                        const OptimizerConfig& cfg) {
  BWPART_ASSERT(!apps.empty(), "empty workload");
  BWPART_ASSERT(b > 0.0, "bandwidth must be positive");
  const std::size_t n = apps.size();
  std::vector<double> caps(n);
  double cap_sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    caps[i] = apps[i].apc_alone;
    cap_sum += caps[i];
  }
  const double total = std::min(b, cap_sum);

  // Start from the proportional allocation (always feasible).
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) x[i] = caps[i] / cap_sum * total;

  const double eps = cfg.gradient_epsilon_fraction * total;
  double step = cfg.initial_step_fraction * total;
  std::vector<double> grad(n), trial(n);
  double best_value = objective(x);
  std::vector<double> best = x;

  for (int iter = 0; iter < cfg.iterations; ++iter) {
    // Central-difference gradient (projected after the step, so the raw
    // gradient need not be feasibility-preserving).
    for (std::size_t i = 0; i < n; ++i) {
      const double saved = x[i];
      x[i] = saved + eps;
      const double up = objective(x);
      x[i] = saved - eps;
      const double down = objective(x);
      x[i] = saved;
      grad[i] = (up - down) / (2.0 * eps);
    }
    double norm = 0.0;
    for (double g : grad) norm += g * g;
    norm = std::sqrt(norm);
    if (norm < 1e-18) break;
    for (std::size_t i = 0; i < n; ++i) {
      trial[i] = x[i] + step * grad[i] / norm;
    }
    x = project_capped_simplex(trial, caps, total);
    const double value = objective(x);
    if (value > best_value) {
      best_value = value;
      best = x;
    } else {
      step *= 0.97;  // cool down when no longer improving
      if (step < 1e-9 * total) break;
    }
  }
  return best;
}

std::vector<double> optimize_metric(Metric m, std::span<const AppParams> apps,
                                    double b, const OptimizerConfig& cfg) {
  std::vector<double> ipc_alone;
  ipc_alone.reserve(apps.size());
  for (const AppParams& a : apps) ipc_alone.push_back(a.ipc_alone());
  // Copy the app parameters: the returned lambda must not reference the
  // caller's span after this function returns (it does not here, but the
  // objective is also handed to optimize_allocation which stores nothing).
  std::vector<AppParams> owned(apps.begin(), apps.end());
  const AllocationObjective objective =
      [owned, ipc_alone, m](std::span<const double> apc) {
        std::vector<double> shared(apc.size());
        for (std::size_t i = 0; i < apc.size(); ++i) {
          shared[i] = owned[i].ipc_at(std::max(apc[i], 1e-15));
        }
        return evaluate_metric(m, shared, ipc_alone);
      };
  return optimize_allocation(objective, apps, b, cfg);
}

}  // namespace bwpart::core
