// Churn-engine property battery: random churn schedules are exactly as
// deterministic as fixed runs (bit-identical fingerprints across reruns,
// fast-forward on/off, and parallel sweeps), an empty schedule reproduces
// the fixed-mix measure phase bit for bit, schedules round-trip through the
// text grammar, and a mid-churn snapshot resumes field-by-field equal to an
// uninterrupted run.
#include <algorithm>
#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "common/pbt.hpp"
#include "harness/churn.hpp"
#include "harness/differential.hpp"
#include "harness/experiment.hpp"
#include "harness/generators.hpp"
#include "profile/alone_profiler.hpp"
#include "workload/mixes.hpp"

namespace bwpart::harness {
namespace {

struct ChurnCase {
  SystemConfig cfg;
  std::vector<workload::BenchmarkSpec> mix;
  PhaseConfig phases;
  ChurnSchedule schedule;
  ChurnRunConfig churn;
};

/// A structurally valid random schedule over `n` apps and a measure window
/// of `measure` cycles: random initial dormancy (at least one app live),
/// then a legal random walk of arrivals/departures/phase changes.
ChurnSchedule random_schedule(Rng& rng, std::size_t n, Cycle measure) {
  ChurnSchedule s;
  std::vector<bool> live(n, true);
  std::size_t num_live = n;
  for (AppId a = 0; a < n; ++a) {
    if (num_live > 1 && pbt::gen_uint(rng, 0, 9) < 3) {
      s.dormant(a);
      live[a] = false;
      --num_live;
    }
  }
  const std::size_t num_events = static_cast<std::size_t>(
      pbt::gen_uint(rng, 1, 6));
  std::vector<Cycle> cycles;
  for (std::size_t i = 0; i < num_events; ++i) {
    cycles.push_back(pbt::gen_uint(rng, 1, measure - 1));
  }
  std::sort(cycles.begin(), cycles.end());
  for (const Cycle at : cycles) {
    const AppId app = static_cast<AppId>(pbt::gen_uint(rng, 0, n - 1));
    if (!live[app]) {
      s.arrive(at, app);
      live[app] = true;
      ++num_live;
    } else if (num_live > 1 && pbt::gen_uint(rng, 0, 2) == 0) {
      s.depart(at, app);
      live[app] = false;
      --num_live;
    } else {
      PhaseKnobs k;
      k.api = pbt::gen_double(rng, 0.002, 0.08);
      if (pbt::gen_uint(rng, 0, 1) == 0) {
        k.mean_cluster = pbt::gen_double(rng, 1.0, 8.0);
      }
      if (pbt::gen_uint(rng, 0, 1) == 0) {
        k.write_fraction = pbt::gen_double(rng, 0.0, 0.5);
      }
      s.phase(at, app, k);
    }
  }
  return s;
}

pbt::GenFn<ChurnCase> churn_case_gen() {
  return [](Rng& rng) {
    ChurnCase c;
    c.cfg = gen::system_config(rng);
    c.mix = gen::mix(rng, 2, 4);
    c.phases = gen::phase_config(rng);
    c.phases.reprofile_period = 0;
    c.schedule = random_schedule(rng, c.mix.size(),
                                 c.phases.measure_cycles);
    c.churn.scheme = gen::scheme(rng);
    c.churn.resolve_on_churn = pbt::gen_uint(rng, 0, 3) != 0;
    c.churn.reprofile_window = pbt::gen_uint(rng, 2'000, 12'000);
    c.churn.eval_epoch = pbt::gen_uint(rng, 3'000, 10'000);
    return c;
  };
}

std::string print_churn_case(const ChurnCase& c) {
  std::ostringstream os;
  os << "scheme=" << core::to_string(c.churn.scheme)
     << " seed=" << c.phases.seed << " measure=" << c.phases.measure_cycles
     << " resolve=" << c.churn.resolve_on_churn << " mix={";
  for (const workload::BenchmarkSpec& b : c.mix) os << b.name << " ";
  os << "} schedule{" << c.schedule.to_compact() << "}";
  return os.str();
}

/// Same degeneracy guard as the fixed-run e2e properties: a tiny random
/// profile window can leave an app with zero estimated APC/API, which the
/// partitioning layer rejects by design.
bool profile_is_degenerate(const ChurnCase& c) {
  CmpSystem sys(c.cfg, c.mix, c.phases.seed);
  sys.run(c.phases.warmup_cycles);
  sys.reset_measurement();
  sys.run(c.phases.profile_cycles);
  for (const profile::AppCounters& counters : sys.profiler_counters()) {
    const core::AppParams p =
        profile::estimate_alone(counters, c.phases.profile_cycles);
    if (p.apc_alone <= 0.0 || p.api <= 0.0) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Determinism: rerun, fast-forward on/off, grammar round-trip.

TEST(ChurnProperties, RandomSchedulesDeterministicAcrossEnginesAndReruns) {
  check::Recorder rec;
  int skipped = 0;
  const pbt::Result r = pbt::for_all<ChurnCase>(
      "churn-determinism", churn_case_gen(),
      [&rec, &skipped](const ChurnCase& c) -> std::string {
        if (profile_is_degenerate(c)) {
          ++skipped;
          return {};
        }
        rec.clear();
        const Experiment exp(c.cfg, c.mix, c.phases);
        const ChurnRunResult a = exp.run_churn(c.schedule, c.churn);
        if (rec.count() != 0) {
          return "invariant violation: " + rec.violations().front().what;
        }
        const ChurnRunResult b = exp.run_churn(c.schedule, c.churn);
        if (fingerprint(a) != fingerprint(b)) {
          return "same-seed churn rerun is not bit-identical";
        }
        SystemConfig noff = c.cfg;
        noff.fast_forward = !c.cfg.fast_forward;
        const Experiment exp2(noff, c.mix, c.phases);
        const ChurnRunResult d = exp2.run_churn(c.schedule, c.churn);
        if (fingerprint(a) != fingerprint(d)) {
          return "fast-forward on/off diverge under churn";
        }
        // The text grammar is a faithful codec: parsing the canonical text
        // reproduces the schedule and therefore the run bit for bit.
        const ChurnSchedule reparsed = ChurnSchedule::parse(
            c.schedule.to_text());
        if (reparsed.fingerprint() != c.schedule.fingerprint()) {
          return "schedule does not round-trip through its grammar";
        }
        const ChurnRunResult e = exp.run_churn(reparsed, c.churn);
        if (fingerprint(a) != fingerprint(e)) {
          return "reparsed schedule diverges from the original";
        }
        // Tenancy accounting: live cycles never exceed the window, and an
        // app that was live throughout has rates equal to the plain form.
        for (std::size_t i = 0; i < c.mix.size(); ++i) {
          if (a.live_cycles[i] > c.phases.measure_cycles) {
            return "live_window exceeds the measure window";
          }
          if (a.live_cycles[i] == c.phases.measure_cycles &&
              a.ipc_live[i] != a.base.ipc_shared[i]) {
            return "always-live app's tenancy rate differs from plain IPC";
          }
        }
        return {};
      },
      {}, nullptr, print_churn_case);
  EXPECT_TRUE(r.ok) << r.report();
  EXPECT_GE(r.cases_run, 200);
  EXPECT_LT(skipped, r.cases_run / 4) << "too many degenerate profiles";
}

TEST(ChurnProperties, ParallelChurnSweepBitIdenticalToSerial) {
  Rng rng(pbt::case_seed(pbt::base_seed(), 77));
  const auto apps = workload::resolve_mix(workload::fig1_mix());
  PhaseConfig phases;
  phases.warmup_cycles = 2'000;
  phases.profile_cycles = 15'000;
  phases.measure_cycles = 30'000;
  std::vector<ChurnSchedule> schedules;
  for (int i = 0; i < 10; ++i) {
    schedules.push_back(random_schedule(rng, apps.size(),
                                        phases.measure_cycles));
  }
  const SweepDifference d = diff_parallel_sweep(
      schedules.size(),
      [&](std::size_t i) {
        PhaseConfig p = phases;
        p.seed = 4000 + i;
        const Experiment exp(SystemConfig{}, apps, p);
        ChurnRunConfig cc;
        cc.scheme = core::kAllSchemes[i % std::size(core::kAllSchemes)];
        cc.reprofile_window = 4'000;
        cc.eval_epoch = 5'000;
        return fingerprint(exp.run_churn(schedules[i], cc));
      },
      4);
  EXPECT_TRUE(d.identical)
      << "job " << d.first_mismatch << " diverged: serial fp " << d.serial_fp
      << " vs parallel fp " << d.parallel_fp;
}

// ---------------------------------------------------------------------------
// Empty schedule == today's fixed-mix path, bit for bit.

TEST(ChurnProperties, EmptyScheduleBitIdenticalToFixedMixPath) {
  int skipped = 0;
  const pbt::Result r = pbt::for_all<ChurnCase>(
      "churn-empty-identity", churn_case_gen(),
      [&skipped](const ChurnCase& c) -> std::string {
        if (profile_is_degenerate(c)) {
          ++skipped;
          return {};
        }
        const Experiment exp(c.cfg, c.mix, c.phases);
        const RunResult fixed = exp.run(c.churn.scheme);
        ChurnRunConfig cc = c.churn;
        cc.qos.clear();
        const ChurnRunResult churn = exp.run_churn(ChurnSchedule{}, cc);
        if (fingerprint(churn.base) != fingerprint(fixed)) {
          return "empty-schedule churn run diverges from run()";
        }
        if (churn.resolves != 1 || !churn.outcomes.empty() ||
            churn.qos_violation_cycles != 0) {
          return "empty schedule produced churn artifacts";
        }
        return {};
      },
      {}, nullptr, print_churn_case);
  EXPECT_TRUE(r.ok) << r.report();
  EXPECT_GE(r.cases_run, 200);
  EXPECT_LT(skipped, r.cases_run / 4) << "too many degenerate profiles";
}

TEST(ChurnProperties, EmptyScheduleQosBitIdenticalToRunQos) {
  const auto apps = workload::resolve_mix(workload::qos_mix1());
  PhaseConfig phases;
  phases.warmup_cycles = 10'000;
  phases.profile_cycles = 120'000;
  phases.measure_cycles = 120'000;
  const Experiment exp(SystemConfig{}, apps, phases);
  const core::QosRequirement req{3, 0.6};
  for (const core::Scheme be :
       {core::Scheme::SquareRoot, core::Scheme::PriorityApc}) {
    const RunResult fixed = exp.run_qos(std::span(&req, 1), be);
    ChurnRunConfig cc;
    cc.scheme = be;
    cc.qos = {req};
    const ChurnRunResult churn = exp.run_churn(ChurnSchedule{}, cc);
    EXPECT_EQ(fingerprint(churn.base), fingerprint(fixed))
        << core::to_string(be);
  }
}

// ---------------------------------------------------------------------------
// Mid-churn snapshot save/restore resumes bit-identically.

struct SnapshotCase {
  ChurnCase base;
  std::size_t stop_after_steps = 1;
};

TEST(ChurnProperties, MidChurnSnapshotResumesBitIdentically) {
  int skipped = 0;
  const pbt::Result r = pbt::for_all<SnapshotCase>(
      "churn-snapshot-resume",
      [](Rng& rng) {
        SnapshotCase c;
        c.base = churn_case_gen()(rng);
        c.stop_after_steps =
            static_cast<std::size_t>(pbt::gen_uint(rng, 1, 8));
        return c;
      },
      [&skipped](const SnapshotCase& sc) -> std::string {
        const ChurnCase& c = sc.base;
        if (profile_is_degenerate(c)) {
          ++skipped;
          return {};
        }
        // Profile once; both runs fork from the identical byte state.
        const Experiment exp(c.cfg, c.mix, c.phases);
        const ProfileSnapshot profile = exp.capture_profile();
        const ChurnRunResult whole =
            exp.measure_churn_from(profile, c.schedule, c.churn);

        // Interrupted run: step a few boundaries, snapshot system + engine
        // cursor, then resume both into fresh objects and run to the end.
        CmpSystem sys(c.cfg, c.mix, c.phases.seed);
        {
          snap::Reader pr(profile.state);
          sys.restore_state(pr);
        }
        ChurnEngine engine(sys, c.schedule, c.churn,
                           c.phases.measure_cycles, profile.params,
                           profile.profiled_b, c.cfg.dstf_row_hit_window);
        engine.start();
        bool more = true;
        for (std::size_t i = 0; i < sc.stop_after_steps && more; ++i) {
          more = engine.step();
        }
        snap::Writer w;
        sys.save_state(w);
        engine.save_state(w);
        const std::vector<std::uint8_t> blob = w.take();

        CmpSystem sys2(c.cfg, c.mix, c.phases.seed);
        snap::Reader rr(blob);
        sys2.restore_state(rr);
        ChurnEngine engine2(sys2, c.schedule, c.churn,
                            c.phases.measure_cycles, profile.params,
                            profile.profiled_b, c.cfg.dstf_row_hit_window);
        engine2.restore_state(rr);
        if (!rr.at_end()) return "trailing bytes after the engine cursor";
        while (engine2.step()) {
        }
        const ChurnRunResult resumed = engine2.finish();

        if (fingerprint(resumed) != fingerprint(whole)) {
          return "resumed churn run diverges from the uninterrupted run";
        }
        // Field-by-field spot checks (the fingerprint covers all of these;
        // explicit comparisons make a failure legible).
        if (resumed.resolves != whole.resolves) return "resolves differ";
        if (resumed.outcomes.size() != whole.outcomes.size()) {
          return "outcome counts differ";
        }
        for (std::size_t i = 0; i < whole.outcomes.size(); ++i) {
          if (resumed.outcomes[i].applied_at != whole.outcomes[i].applied_at ||
              resumed.outcomes[i].resolved_at !=
                  whole.outcomes[i].resolved_at ||
              resumed.outcomes[i].adaptation_lag !=
                  whole.outcomes[i].adaptation_lag) {
            return "outcome " + std::to_string(i) + " differs";
          }
        }
        for (std::size_t i = 0; i < c.mix.size(); ++i) {
          if (resumed.live_cycles[i] != whole.live_cycles[i]) {
            return "live_cycles differ";
          }
          if (resumed.base.ipc_shared[i] != whole.base.ipc_shared[i]) {
            return "ipc_shared differs";
          }
        }
        return {};
      },
      {}, nullptr,
      [](const SnapshotCase& sc) {
        return print_churn_case(sc.base) +
               " stop_after=" + std::to_string(sc.stop_after_steps);
      });
  EXPECT_TRUE(r.ok) << r.report();
  EXPECT_GE(r.cases_run, 200);
  EXPECT_LT(skipped, r.cases_run / 4) << "too many degenerate profiles";
}

// ---------------------------------------------------------------------------
// Grammar: parse errors are loud and name the line.

TEST(ChurnProperties, GrammarRejectsMalformedSchedulesLoudly) {
  for (const char* bad : {
           "@5 arrive",              // missing app
           "@x arrive 0",            // bad cycle
           "arrive 0",               // missing @cycle
           "@5 vanish 0",            // unknown verb
           "@5 phase 0 api",         // knob without value
           "@5 phase 0 rowbuf=3",    // unknown knob
           "dormant",                // empty list
           "@5 arrive 0 1",          // extra operand
       }) {
    EXPECT_THROW((void)ChurnSchedule::parse(bad), std::runtime_error) << bad;
  }
  // Validation: out-of-range apps, double arrivals, empty machines.
  ChurnSchedule s1 = ChurnSchedule::parse("@5 arrive 7");
  EXPECT_THROW(s1.validate(4), std::runtime_error);
  ChurnSchedule s2 = ChurnSchedule::parse("@5 arrive 0");
  EXPECT_THROW(s2.validate(4), std::runtime_error);  // already live
  ChurnSchedule s3 = ChurnSchedule::parse("dormant 0,1\n@5 depart 2");
  EXPECT_THROW(s3.validate(3), std::runtime_error);  // no live app left
  ChurnSchedule s4 = ChurnSchedule::parse("@9 depart 1\n@5 depart 2");
  EXPECT_THROW(s4.validate(4), std::runtime_error);  // out of order
  // Compact and multi-line forms parse identically.
  const ChurnSchedule a =
      ChurnSchedule::parse("dormant 1\n@5 arrive 1\n@9 phase 0 api=0.01");
  const ChurnSchedule b =
      ChurnSchedule::parse("dormant 1;@5 arrive 1;@9 phase 0 api=0.01");
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  EXPECT_NE(a.fingerprint(), 0u);
  EXPECT_EQ(ChurnSchedule{}.fingerprint(), 0u);
}

}  // namespace
}  // namespace bwpart::harness
