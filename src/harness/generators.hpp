// Seeded random generators for the property-based test suites: workloads
// (AppParams vectors and benchmark mixes), machine/phase configurations,
// and partitioning inputs. They live in the harness layer because they span
// every module below it; the PBT engine itself (common/pbt.hpp) is
// domain-agnostic.
//
// Ranges are chosen to bracket the paper's Table III / Table II values —
// APC_alone spanning the low/middle/high intensity classes, API up to
// streaming-benchmark levels, DDR2/DDR3-class machines — so random cases
// stay physically meaningful while covering well beyond the fixtures.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "core/app_params.hpp"
#include "core/partition.hpp"
#include "harness/experiment.hpp"
#include "harness/system.hpp"
#include "workload/spec_table.hpp"

namespace bwpart::harness::gen {

/// One application: APC_alone log-uniform over the paper's intensity
/// classes (~1e-3 .. 0.12 accesses/cycle), API log-uniform (5e-4 .. 0.05).
core::AppParams app_params(Rng& rng);

/// A workload of uniformly many apps in [min_apps, max_apps].
std::vector<core::AppParams> workload(Rng& rng, std::size_t min_apps,
                                      std::size_t max_apps);

/// A bandwidth budget B for `apps`: uniform between 30% and 130% of the
/// summed demand, so both contended and under-committed regimes appear.
double bandwidth(Rng& rng, std::span<const core::AppParams> apps);

/// Any of the seven partitioning schemes, uniformly.
core::Scheme scheme(Rng& rng);

/// A benchmark mix sampled (with replacement) from the paper's Table III.
std::vector<workload::BenchmarkSpec> mix(Rng& rng, std::size_t min_apps,
                                         std::size_t max_apps);

/// A small machine: 1-2 channels, 1-4 ranks, 4-8 banks, open or close page,
/// DDR2-400/800 bus — sized so property tests stay fast.
SystemConfig system_config(Rng& rng);

/// Short phase windows (tens of thousands of cycles) with a random seed
/// derived from `rng` — intended for randomized end-to-end runs.
PhaseConfig phase_config(Rng& rng);

}  // namespace bwpart::harness::gen
