// Shared option handling for the figure/table regeneration benches.
//
// Every bench accepts:
//   --quick        4x shorter windows (smoke testing)
//   --paper-scale  the paper's 10M-cycle profile + 10M-cycle measurement
//   --seed N       trace seed (default 42)
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>

#include "harness/experiment.hpp"

namespace bwpart::bench {

struct Options {
  harness::PhaseConfig phases;
  bool quick = false;
  bool paper_scale = false;
};

inline Options parse_options(int argc, char** argv,
                             Cycle default_window = 1'500'000) {
  Options opt;
  opt.phases.warmup_cycles = default_window / 5;
  opt.phases.profile_cycles = default_window;
  opt.phases.measure_cycles = default_window;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      opt.quick = true;
    } else if (std::strcmp(argv[i], "--paper-scale") == 0) {
      opt.paper_scale = true;
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      opt.phases.seed = std::strtoull(argv[++i], nullptr, 10);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--quick] [--paper-scale] [--seed N]\n",
                   argv[0]);
    }
  }
  if (opt.paper_scale) {
    opt.phases = harness::PhaseConfig::paper_scale();
  } else if (opt.quick) {
    opt.phases.warmup_cycles /= 4;
    opt.phases.profile_cycles /= 4;
    opt.phases.measure_cycles /= 4;
  }
  return opt;
}

/// Percent change helper for "improvement over baseline" lines.
inline double pct(double value, double baseline) {
  return 100.0 * (value / baseline - 1.0);
}

}  // namespace bwpart::bench
