#include "common/parallel.hpp"

#include <algorithm>

namespace bwpart {

std::size_t default_parallelism(std::size_t jobs) {
  const unsigned hw = std::thread::hardware_concurrency();
  const std::size_t cap = hw == 0 ? 1 : hw;
  return std::max<std::size_t>(1, std::min(jobs, cap));
}

}  // namespace bwpart
