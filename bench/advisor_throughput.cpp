// Advisor service throughput/latency bench -> BENCH_advisor.json.
//
//   advisor_throughput [--quick] [--threads N] [--out FILE]
//
// Three passes over synthetic profile-vector corpora (deterministic, seeded
// from Table IV-like magnitudes):
//   1. aggregate throughput — the full batched/sharded service against an
//      in-memory corpus, responses counted by a discarding streambuf
//      (reported as requests/second);
//   2. exact solve latency — single-threaded parse+solve with a per-request
//      steady_clock sample, reporting p50/p90/p99/mean nanoseconds;
//   3. audit mode — mix-tagged requests with sampled simulator forks,
//      reporting the model-vs-measured IPC error distribution.
// Exits nonzero only on a correctness failure (lost or failed responses);
// the performance numbers are recorded, not gated, so the JSON is the
// tracking artifact (CI archives it).
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "advisor/request.hpp"
#include "advisor/service.hpp"
#include "advisor/solver.hpp"
#include "common/arena.hpp"
#include "obs/hub.hpp"

namespace {

using namespace bwpart;

std::uint64_t splitmix64(std::uint64_t& s) {
  s += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = s;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

double uniform(std::uint64_t& s, double lo, double hi) {
  const double u = static_cast<double>(splitmix64(s) >> 11) * 0x1.0p-53;
  return lo + u * (hi - lo);
}

/// One synthetic request line. Magnitudes follow the simulator's Table
/// III/IV ranges: APC_alone in [0.02, 0.6], API in [0.05, 0.9].
void append_request(std::string& out, std::uint64_t id, std::uint64_t& seed,
                    std::string_view mix) {
  const char* objective;
  switch (id % 3) {
    case 0: objective = "wsp"; break;
    case 1: objective = "fair"; break;
    default: objective = "qos"; break;
  }
  const std::size_t napps = mix.empty() ? 2 + id % 7 : 4;
  char buf[96];
  std::snprintf(buf, sizeof(buf), "r%llu %s b=%.6f",
                static_cast<unsigned long long>(id), objective,
                uniform(seed, 0.3, 1.6));
  out += buf;
  for (std::size_t a = 0; a < napps; ++a) {
    const double apc = uniform(seed, 0.02, 0.6);
    const double api = uniform(seed, 0.05, 0.9);
    if (std::strcmp(objective, "qos") == 0 && a == 0) {
      // One guaranteed app with a deliberately loose target (half the
      // standalone IPC) so most plans stay feasible.
      std::snprintf(buf, sizeof(buf), " a%zu=%.6f,%.6f,1,%.6f", a, apc, api,
                    0.5 * apc / api);
    } else if (std::strcmp(objective, "wsp") == 0 && id % 5 == 0) {
      std::snprintf(buf, sizeof(buf), " a%zu=%.6f,%.6f,%.3f", a, apc, api,
                    uniform(seed, 0.5, 4.0));
    } else {
      std::snprintf(buf, sizeof(buf), " a%zu=%.6f,%.6f", a, apc, api);
    }
    out += buf;
  }
  if (!mix.empty()) {
    out += " mix=";
    out += mix;
  }
  out += '\n';
}

/// Discards everything, counting newlines (responses are JSONL).
class CountingBuf : public std::streambuf {
 public:
  std::uint64_t lines = 0;

 protected:
  int overflow(int c) override {
    if (c == '\n') ++lines;
    return c;
  }
  std::streamsize xsputn(const char* s, std::streamsize n) override {
    for (std::streamsize i = 0; i < n; ++i) {
      if (s[i] == '\n') ++lines;
    }
    return n;
  }
};

double percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double idx = p * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::size_t threads = 0;
  std::string out_path = "BENCH_advisor.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--threads N] [--out FILE]\n",
                   argv[0]);
      return 2;
    }
  }

  const std::uint64_t n_throughput = quick ? 250'000 : 1'000'000;
  const std::uint64_t n_latency = quick ? 50'000 : 200'000;
  const std::uint64_t n_audit_corpus = quick ? 2'000 : 4'000;
  const std::uint64_t audit_every = quick ? 100 : 50;
  int failures = 0;

  // Pass 1: aggregate throughput through the full service.
  std::string corpus;
  corpus.reserve(n_throughput * 64);
  std::uint64_t seed = 42;
  for (std::uint64_t i = 0; i < n_throughput; ++i) {
    append_request(corpus, i, seed, {});
  }
  advisor::ServiceConfig cfg;
  cfg.threads = threads;
  advisor::AdvisorService service(cfg);
  std::istringstream in(corpus);
  CountingBuf sink;
  std::ostream out(&sink);
  const auto t0 = std::chrono::steady_clock::now();
  const advisor::ServiceStats stats = service.run(in, out);
  const auto t1 = std::chrono::steady_clock::now();
  const double seconds = std::chrono::duration<double>(t1 - t0).count();
  const double qps = static_cast<double>(stats.requests) / seconds;
  if (stats.requests != n_throughput || stats.ok != n_throughput ||
      sink.lines != n_throughput || stats.parse_errors != 0) {
    std::fprintf(stderr,
                 "FAIL: %llu requests -> %llu ok, %llu responses, "
                 "%llu parse errors\n",
                 static_cast<unsigned long long>(n_throughput),
                 static_cast<unsigned long long>(stats.ok),
                 static_cast<unsigned long long>(sink.lines),
                 static_cast<unsigned long long>(stats.parse_errors));
    ++failures;
  }
  std::printf("throughput: %llu requests in %.3f s -> %.0f req/s\n",
              static_cast<unsigned long long>(stats.requests), seconds, qps);

  // Pass 2: exact single-thread solve-latency percentiles.
  std::vector<std::string> lines;
  lines.reserve(n_latency);
  {
    std::string one;
    seed = 7;
    for (std::uint64_t i = 0; i < n_latency; ++i) {
      one.clear();
      append_request(one, i, seed, {});
      one.pop_back();  // getline would strip the newline too
      lines.push_back(one);
    }
  }
  std::vector<double> solve_ns;
  solve_ns.reserve(n_latency);
  {
    Arena arena;
    advisor::Solver solver;
    std::string error;
    std::uint64_t batch = 0;
    for (std::uint64_t i = 0; i < n_latency; ++i) {
      advisor::Request req;
      if (!advisor::parse_request_line(lines[i], i + 1, arena, req, error)) {
        std::fprintf(stderr, "FAIL: synthetic request rejected: %s\n",
                     error.c_str());
        ++failures;
        break;
      }
      advisor::Answer ans;
      const auto s0 = std::chrono::steady_clock::now();
      solver.solve(req, arena, ans);
      const auto s1 = std::chrono::steady_clock::now();
      solve_ns.push_back(
          std::chrono::duration<double, std::nano>(s1 - s0).count());
      if (++batch == 4096) {  // mirror the service's per-batch arena reset
        arena.reset();
        batch = 0;
      }
    }
  }
  std::sort(solve_ns.begin(), solve_ns.end());
  const double p50 = percentile(solve_ns, 0.50);
  const double p90 = percentile(solve_ns, 0.90);
  const double p99 = percentile(solve_ns, 0.99);
  double mean_ns = 0.0;
  for (double v : solve_ns) mean_ns += v;
  if (!solve_ns.empty()) mean_ns /= static_cast<double>(solve_ns.size());
  std::printf("solve latency: p50 %.0f ns, p90 %.0f ns, p99 %.0f ns "
              "(mean %.0f ns, n=%zu)\n",
              p50, p90, p99, mean_ns, solve_ns.size());

  // Pass 3: audit mode over mix-tagged requests.
  std::string audit_corpus;
  seed = 11;
  static constexpr std::string_view kMixes[] = {"homo-3", "hetero-5"};
  for (std::uint64_t i = 0; i < n_audit_corpus; ++i) {
    append_request(audit_corpus, i, seed, kMixes[i % 2]);
  }
  advisor::ServiceConfig audit_cfg;
  audit_cfg.threads = threads;
  audit_cfg.audit_every = audit_every;
  audit_cfg.audit_phases.warmup_cycles = quick ? 10'000 : 20'000;
  audit_cfg.audit_phases.profile_cycles = quick ? 50'000 : 100'000;
  audit_cfg.audit_phases.measure_cycles = quick ? 50'000 : 100'000;
  obs::Hub hub;
  audit_cfg.hub = &hub;
  advisor::AdvisorService audit_service(audit_cfg);
  std::istringstream audit_in(audit_corpus);
  CountingBuf audit_sink;
  std::ostream audit_out(&audit_sink);
  const auto a0 = std::chrono::steady_clock::now();
  const advisor::ServiceStats audit_stats =
      audit_service.run(audit_in, audit_out);
  const auto a1 = std::chrono::steady_clock::now();
  const double audit_seconds = std::chrono::duration<double>(a1 - a0).count();
  if (audit_stats.ok != n_audit_corpus || audit_stats.audits == 0) {
    std::fprintf(stderr, "FAIL: audit pass solved %llu/%llu, %llu audits\n",
                 static_cast<unsigned long long>(audit_stats.ok),
                 static_cast<unsigned long long>(n_audit_corpus),
                 static_cast<unsigned long long>(audit_stats.audits));
    ++failures;
  }
  // Infeasible-on-profile qos samples are counted as audit skips; anything
  // beyond those would be a correctness failure, which the service already
  // reflects in parse_errors/ok above.
  const obs::Histogram& err = hub.metrics().histogram("advisor.audit_rel_err_ppm");
  std::printf("audit: %llu audits (%llu skipped) in %.3f s; rel err ppm "
              "min %llu mean %.0f max %llu\n",
              static_cast<unsigned long long>(audit_stats.audits),
              static_cast<unsigned long long>(audit_stats.audit_failures),
              audit_seconds,
              static_cast<unsigned long long>(
                  err.count() ? err.min() : 0),
              err.mean(), static_cast<unsigned long long>(err.max()));

  std::ofstream js(out_path);
  if (!js) {
    std::fprintf(stderr, "cannot open '%s' for writing\n", out_path.c_str());
    return 2;
  }
  js << "{\n"
     << "  \"schema\": 1,\n"
     << "  \"quick\": " << (quick ? "true" : "false") << ",\n"
     << "  \"requests\": " << stats.requests << ",\n"
     << "  \"seconds\": " << seconds << ",\n"
     << "  \"qps\": " << qps << ",\n"
     << "  \"solve_ns\": {\"p50\": " << p50 << ", \"p90\": " << p90
     << ", \"p99\": " << p99 << ", \"mean\": " << mean_ns << "},\n"
     << "  \"audit\": {\"count\": " << audit_stats.audits
     << ", \"skipped\": " << audit_stats.audit_failures
     << ", \"seconds\": " << audit_seconds
     << ", \"max_rel_err\": " << audit_stats.max_audit_rel_err
     << ", \"rel_err_ppm\": {\"min\": " << (err.count() ? err.min() : 0)
     << ", \"mean\": " << err.mean() << ", \"max\": " << err.max()
     << "}},\n"
     << "  \"failures\": " << failures << "\n"
     << "}\n";
  std::printf("wrote %s\n", out_path.c_str());
  return failures == 0 ? 0 : 1;
}
