// The shadow DRAM protocol checker: (a) differential property — random
// request streams driven through the real engine must produce zero shadow
// violations (engine and checker re-derive the JEDEC rules independently);
// (b) negative tests — hand-written command streams that break tFAW, tRCD,
// tRP, tRAS and row-state ordering must each be caught and named.
#include <cstdint>
#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "common/pbt.hpp"
#include "dram/dram_system.hpp"
#include "dram/protocol_checker.hpp"

namespace bwpart::dram {
namespace {

// DDR2-400 tick values (5 ns bus tick): rcd=rp=cl=3, ras=8, rrd=2, faw=8,
// rtp=wtr=ccd=2, wr=3, burst=4. The tFAW tests stretch tfaw to 100 ns
// (20 ticks) so a tFAW break can be staged without also breaking tRRD
// (at stock DDR2-400, 4 x rrd == faw makes that impossible).
DramConfig faw_stretched() {
  DramConfig cfg = DramConfig::ddr2_400();
  cfg.t.tfaw = 100.0;
  return cfg;
}

Command act(std::uint32_t bank, std::uint64_t row) {
  return Command{CommandType::Activate, Location{0, 0, bank, row, 0}, 0, 0};
}
Command rd(std::uint32_t bank, std::uint64_t row) {
  return Command{CommandType::Read, Location{0, 0, bank, row, 0}, 0, 0};
}
Command pre(std::uint32_t bank) {
  return Command{CommandType::Precharge, Location{0, 0, bank, 0, 0}, 0, 0};
}

TEST(ProtocolCheckerNegative, LegalCloseRowSequencePasses) {
  check::Recorder rec;
  ProtocolChecker pc(DramConfig::ddr2_400());
  EXPECT_EQ(pc.observe(act(0, 7), 0), 0);
  EXPECT_EQ(pc.observe(rd(0, 7), 3), 0);    // tRCD = 3 satisfied
  EXPECT_EQ(pc.observe(pre(0), 8), 0);      // tRAS = 8, tRTP = 2 satisfied
  EXPECT_EQ(pc.observe(act(0, 9), 11), 0);  // tRP = 3 satisfied
  EXPECT_EQ(pc.violations(), 0u);
  EXPECT_EQ(pc.commands_checked(), 4u);
  EXPECT_EQ(rec.count(), 0u);
}

TEST(ProtocolCheckerNegative, FifthActivateInsideFawWindowIsCaught) {
  check::Recorder rec;
  ProtocolChecker pc(faw_stretched());  // faw = 20 ticks, rrd = 2 ticks
  // Four ACTs to distinct banks, 3 ticks apart: tRRD satisfied, window
  // legal (only 4 in flight).
  EXPECT_EQ(pc.observe(act(0, 1), 0), 0);
  EXPECT_EQ(pc.observe(act(1, 1), 3), 0);
  EXPECT_EQ(pc.observe(act(2, 1), 6), 0);
  EXPECT_EQ(pc.observe(act(3, 1), 9), 0);
  ASSERT_EQ(rec.count(), 0u);
  // Fifth ACT at tick 12: 12 - 0 < 20, tRRD still fine (12 - 9 = 3 >= 2).
  EXPECT_EQ(pc.observe(act(4, 1), 12), 1);
  EXPECT_TRUE(rec.caught("tFAW")) << "violations: " << rec.count();
  EXPECT_FALSE(rec.caught("tRRD"));
  // At tick 23 the window has slid past ACT@3 (23 - 3 >= 20): legal again.
  rec.clear();
  EXPECT_EQ(pc.observe(act(5, 1), 23), 0);
  EXPECT_EQ(rec.count(), 0u);
}

TEST(ProtocolCheckerNegative, ColumnBeforeTrcdIsCaught) {
  check::Recorder rec;
  ProtocolChecker pc(DramConfig::ddr2_400());
  EXPECT_EQ(pc.observe(act(0, 5), 0), 0);
  EXPECT_EQ(pc.observe(rd(0, 5), 1), 1);  // 1 < 0 + tRCD(3)
  EXPECT_TRUE(rec.caught("tRCD"));
  EXPECT_FALSE(rec.caught("row-state"));
}

TEST(ProtocolCheckerNegative, ActivateBeforePrechargeRecoveryIsCaught) {
  check::Recorder rec;
  ProtocolChecker pc(DramConfig::ddr2_400());
  EXPECT_EQ(pc.observe(act(0, 5), 0), 0);
  EXPECT_EQ(pc.observe(pre(0), 8), 0);     // tRAS satisfied exactly
  EXPECT_EQ(pc.observe(act(0, 6), 9), 1);  // 9 < 8 + tRP(3)
  EXPECT_TRUE(rec.caught("tRP"));
  EXPECT_FALSE(rec.caught("tRAS"));
}

TEST(ProtocolCheckerNegative, PrechargeBeforeTrasIsCaught) {
  check::Recorder rec;
  ProtocolChecker pc(DramConfig::ddr2_400());
  EXPECT_EQ(pc.observe(act(0, 5), 0), 0);
  EXPECT_EQ(pc.observe(pre(0), 4), 1);  // 4 < tRAS(8)
  EXPECT_TRUE(rec.caught("tRAS"));
}

TEST(ProtocolCheckerNegative, RowStateOrderingIsCaught) {
  check::Recorder rec;
  ProtocolChecker pc(DramConfig::ddr2_400());
  // Column access to a bank that was never activated.
  EXPECT_EQ(pc.observe(rd(2, 5), 0), 1);
  EXPECT_TRUE(rec.caught("row-state"));
  rec.clear();
  // ACT on top of an already open row.
  EXPECT_EQ(pc.observe(act(3, 1), 10), 0);
  EXPECT_EQ(pc.observe(act(3, 2), 40), 1);
  EXPECT_TRUE(rec.caught("row-state"));
  rec.clear();
  // The shadow applied the (bad) ACT so row 2 is now open; reading the old
  // row must flag a row mismatch.
  EXPECT_EQ(pc.observe(rd(3, 1), 44), 1);
  EXPECT_TRUE(rec.caught("row-state"));
}

TEST(ProtocolCheckerNegative, ActDuringRefreshIsCaught) {
  check::Recorder rec;
  ProtocolChecker pc(DramConfig::ddr2_400());
  EXPECT_EQ(pc.observe_refresh(0, 0, 0), 0);
  // tRFC = ceil(127.5/5) = 26 ticks; ACT at tick 10 lands inside it.
  EXPECT_EQ(pc.observe(act(0, 1), 10), 1);
  EXPECT_TRUE(rec.caught("tRFC"));
}

// The checker keeps its own AoS shadow state and re-derives every JEDEC
// rule straight from DramConfig — it shares none of the SoA fast-path
// tables (CmdTimings, cached next-legal ticks) it audits. This test
// records a command stream from the real SoA engine, confirms the legal
// stream passes the shadow clean, then pulls one column command inside its
// tRCD window — producing a stream the fast path's legality tables would
// never emit — and requires the shadow to catch and name it.
TEST(ProtocolCheckerNegative, IllegalStreamAgainstSoaFastPathIsCaught) {
  DramConfig cfg = DramConfig::ddr2_400();
  cfg.enable_refresh = false;
  cfg.page_policy = PagePolicy::Open;  // plain RD + explicit PRE commands
  DramSystem engine(cfg);
  std::vector<Command> cmds;
  std::vector<Tick> ticks;
  Tick now = 0;
  std::uint64_t row = 1;
  while (cmds.size() < 24 && now < 10'000) {
    engine.tick(now);
    const Location loc{0, 0, 0, row, 0};
    const Command cmd{engine.required_command(loc, AccessType::Read), loc, 0,
                      0};
    if (engine.can_issue(cmd, now)) {
      engine.issue(cmd, now);
      cmds.push_back(cmd);
      ticks.push_back(now);
      // A fresh row per read forces PRE -> ACT -> RD cycles, so all three
      // command types appear in the recorded stream.
      if (is_read_command(cmd.type)) ++row;
    }
    ++now;
  }
  ASSERT_GE(cmds.size(), 24u);

  check::Recorder rec;
  {
    ProtocolChecker shadow(cfg);
    for (std::size_t i = 0; i < cmds.size(); ++i) {
      EXPECT_EQ(shadow.observe(cmds[i], ticks[i]), 0)
          << "legal engine stream flagged at command " << i;
    }
    EXPECT_EQ(shadow.violations(), 0u);
  }
  EXPECT_EQ(rec.count(), 0u);

  // Find an ACT immediately followed by its column command and move the
  // column one tick inside tRCD.
  std::size_t rd_at = 0;
  for (std::size_t i = 0; i + 1 < cmds.size(); ++i) {
    if (cmds[i].type == CommandType::Activate &&
        is_read_command(cmds[i + 1].type)) {
      rd_at = i + 1;
      break;
    }
  }
  ASSERT_GT(rd_at, 0u);
  std::vector<Tick> tampered = ticks;
  tampered[rd_at] = ticks[rd_at - 1] + engine.timings().rcd - 1;
  ProtocolChecker shadow(cfg);
  int flagged = 0;
  for (std::size_t i = 0; i < cmds.size(); ++i) {
    flagged += shadow.observe(cmds[i], tampered[i]);
  }
  EXPECT_GT(flagged, 0);
  EXPECT_TRUE(rec.caught("tRCD")) << "violations recorded: " << rec.count();
}

// ---------------------------------------------------------------------------
// Differential property: whatever the engine issues, the shadow agrees.

struct StreamCase {
  DramConfig cfg;
  std::uint64_t seed = 0;
  int ticks = 0;
};

pbt::GenFn<StreamCase> stream_case_gen() {
  return [](Rng& rng) {
    StreamCase c;
    c.cfg = rng.next_bool(0.5) ? DramConfig::ddr2_400()
                               : DramConfig::ddr2_800();
    // Geometry must stay a power of two for the address map.
    c.cfg.channels = static_cast<std::uint32_t>(pbt::gen_uint(rng, 1, 2));
    c.cfg.ranks = rng.next_bool(0.5) ? 1u : 2u;
    c.cfg.banks_per_rank = rng.next_bool(0.5) ? 4u : 8u;
    c.cfg.page_policy =
        rng.next_bool(0.5) ? PagePolicy::Open : PagePolicy::Close;
    c.cfg.enable_refresh = rng.next_bool(0.75);
    c.seed = rng.next_u64();
    c.ticks = static_cast<int>(pbt::gen_uint(rng, 500, 1500));
    return c;
  };
}

std::string print_stream_case(const StreamCase& c) {
  std::ostringstream os;
  os << "bus=" << (c.cfg.bus_clock.mhz()) << "MHz ch=" << c.cfg.channels
     << " ranks=" << c.cfg.ranks << " banks=" << c.cfg.banks_per_rank
     << " page=" << (c.cfg.page_policy == PagePolicy::Open ? "open" : "close")
     << " refresh=" << c.cfg.enable_refresh << " seed=" << c.seed
     << " ticks=" << c.ticks;
  return os.str();
}

TEST(ProtocolCheckerProperty, EngineStreamsNeverViolateShadowRules) {
  if constexpr (!check::kEnabled) {
    GTEST_SKIP() << "BWPART_CHECK is compiled out";
  }
  check::Recorder rec;  // a disagreement fails the test instead of aborting
  std::uint64_t total_checked = 0;
  const pbt::Result r = pbt::for_all<StreamCase>(
      "engine-vs-shadow", stream_case_gen(),
      [&rec, &total_checked](const StreamCase& c) -> std::string {
        rec.clear();
        DramSystem dram(c.cfg);
        Rng rng(c.seed);
        for (Tick now = 0; now < static_cast<Tick>(c.ticks); ++now) {
          dram.tick(now);
          // A couple of issue attempts per tick at random hot locations.
          for (int attempt = 0; attempt < 2; ++attempt) {
            Location loc{};
            loc.channel = static_cast<std::uint32_t>(
                rng.next_below(c.cfg.channels));
            loc.rank =
                static_cast<std::uint32_t>(rng.next_below(c.cfg.ranks));
            loc.bank = static_cast<std::uint32_t>(
                rng.next_below(c.cfg.banks_per_rank));
            loc.row = rng.next_below(8);  // few rows -> frequent conflicts
            loc.column = static_cast<std::uint32_t>(rng.next_below(64));
            const AccessType at =
                rng.next_bool(0.3) ? AccessType::Write : AccessType::Read;
            const Command cmd{dram.required_command(loc, at), loc, 0, 0};
            if (dram.can_issue(cmd, now)) dram.issue(cmd, now);
          }
        }
        const ProtocolChecker* pc = dram.protocol_checker();
        if (pc == nullptr) return "checker not attached";
        total_checked += pc->commands_checked();
        if (pc->violations() != 0 || rec.count() != 0) {
          std::ostringstream os;
          os << pc->violations() << " shadow violations; first: "
             << (rec.violations().empty() ? "<none recorded>"
                                          : rec.violations().front().what);
          return os.str();
        }
        return {};
      },
      {}, nullptr, print_stream_case);
  EXPECT_TRUE(r.ok) << r.report();
  EXPECT_GE(r.cases_run, 200);
  EXPECT_GT(total_checked, 0u) << "streams issued no commands at all";
}

}  // namespace
}  // namespace bwpart::dram
