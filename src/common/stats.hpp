// Small statistics helpers used across the model and the experiment
// harness: arithmetic/harmonic means, relative standard deviation (the
// paper's workload-heterogeneity measure, Section V-C2), and a streaming
// accumulator for per-run counters.
#pragma once

#include <cstddef>
#include <span>

namespace bwpart {

/// Arithmetic mean of a non-empty sequence.
double mean(std::span<const double> xs);

/// Population standard deviation of a non-empty sequence.
double stddev(std::span<const double> xs);

/// Relative Standard Deviation in percent: 100 * stddev / mean.
/// The paper calls a 4-app mix heterogeneous when the RSD of the apps'
/// APC_alone values exceeds 30.
double relative_stddev_percent(std::span<const double> xs);

/// Harmonic mean of a non-empty sequence of positive values.
double harmonic_mean(std::span<const double> xs);

/// Geometric mean of a non-empty sequence of positive values.
double geometric_mean(std::span<const double> xs);

/// Minimum element of a non-empty sequence.
double min_value(std::span<const double> xs);

/// Welford streaming mean/variance accumulator.
class StreamingStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return mean_; }
  /// Population variance; zero when fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

}  // namespace bwpart
