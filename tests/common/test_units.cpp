#include "common/units.hpp"

#include <gtest/gtest.h>

namespace bwpart {
namespace {

TEST(Units, PaperExampleConversion) {
  // Section III-A: 0.01 APC at 5 GHz with 64 B lines == 3.2 GB/s.
  BandwidthContext ctx;
  EXPECT_NEAR(ctx.apc_to_gbps(0.01), 3.2, 1e-12);
  EXPECT_NEAR(ctx.gbps_to_apc(3.2), 0.01, 1e-15);
}

TEST(Units, RoundTripConversion) {
  BandwidthContext ctx;
  for (double apc : {0.001, 0.0075, 0.02}) {
    EXPECT_NEAR(ctx.gbps_to_apc(ctx.apc_to_gbps(apc)), apc, 1e-15);
  }
}

TEST(Units, ApkcConversion) {
  EXPECT_DOUBLE_EQ(BandwidthContext::apc_to_apkc(0.0093), 9.3);
  EXPECT_DOUBLE_EQ(BandwidthContext::apkc_to_apc(9.3), 0.0093);
}

TEST(Units, DdrPeakBandwidth) {
  // DDR2-400: 200 MHz bus, both edges, 8 bytes -> 3.2 GB/s.
  EXPECT_NEAR(ddr_peak_bytes_per_sec(Frequency::from_mhz(200), 8), 3.2e9,
              1e-3);
  // Doubling the bus clock doubles peak (the Fig. 4 scaling rule).
  EXPECT_NEAR(ddr_peak_bytes_per_sec(Frequency::from_mhz(400), 8), 6.4e9,
              1e-3);
}

TEST(Units, FrequencyFactories) {
  EXPECT_EQ(Frequency::from_ghz(5.0).hz, 5'000'000'000ull);
  EXPECT_EQ(Frequency::from_mhz(200).hz, 200'000'000ull);
  EXPECT_DOUBLE_EQ(Frequency::from_mhz(200).mhz(), 200.0);
  EXPECT_DOUBLE_EQ(Frequency::from_ghz(5.0).ghz(), 5.0);
}

TEST(Units, LowerCpuClockNeedsMoreApcForSameGbps) {
  BandwidthContext fast{Frequency::from_ghz(5.0), 64};
  BandwidthContext slow{Frequency::from_ghz(2.5), 64};
  EXPECT_GT(slow.gbps_to_apc(3.2), fast.gbps_to_apc(3.2));
}

}  // namespace
}  // namespace bwpart
