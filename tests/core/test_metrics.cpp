#include "core/metrics.hpp"

#include <gtest/gtest.h>

#include <array>

#include "core/app_params.hpp"

namespace bwpart::core {
namespace {

const std::array<double, 4> kAlone{1.0, 2.0, 0.5, 4.0};

TEST(Metrics, AllOnesWhenSharedEqualsAlone) {
  EXPECT_DOUBLE_EQ(harmonic_weighted_speedup(kAlone, kAlone), 1.0);
  EXPECT_DOUBLE_EQ(weighted_speedup(kAlone, kAlone), 1.0);
  EXPECT_DOUBLE_EQ(min_fairness(kAlone, kAlone), 4.0);  // N * min speedup
}

TEST(Metrics, HalfSpeedEverywhere) {
  std::array<double, 4> shared = kAlone;
  for (double& x : shared) x /= 2.0;
  EXPECT_DOUBLE_EQ(harmonic_weighted_speedup(shared, kAlone), 0.5);
  EXPECT_DOUBLE_EQ(weighted_speedup(shared, kAlone), 0.5);
  EXPECT_DOUBLE_EQ(min_fairness(shared, kAlone), 2.0);
}

TEST(Metrics, IpcSumIsPlainSum) {
  const std::array<double, 3> shared{0.5, 1.5, 2.0};
  EXPECT_DOUBLE_EQ(ipc_sum(shared), 4.0);
}

TEST(Metrics, HspIsHarmonicMeanOfSpeedups) {
  // Speedups 1.0 and 0.5: harmonic mean = 2/(1 + 2) = 2/3.
  const std::array<double, 2> alone{1.0, 1.0};
  const std::array<double, 2> shared{1.0, 0.5};
  EXPECT_NEAR(harmonic_weighted_speedup(shared, alone), 2.0 / 3.0, 1e-12);
}

TEST(Metrics, WspIsArithmeticMeanOfSpeedups) {
  const std::array<double, 2> alone{1.0, 1.0};
  const std::array<double, 2> shared{1.0, 0.5};
  EXPECT_DOUBLE_EQ(weighted_speedup(shared, alone), 0.75);
}

TEST(Metrics, HspNeverExceedsWsp) {
  // AM-HM inequality on speedups.
  const std::array<double, 4> shared{0.8, 1.3, 0.2, 3.1};
  EXPECT_LE(harmonic_weighted_speedup(shared, kAlone),
            weighted_speedup(shared, kAlone) + 1e-12);
}

TEST(Metrics, MinFairnessThresholdSemantics) {
  // "The system achieves minimum fairness" iff every app has >= 1/N
  // speedup, i.e. MinF >= 1 (Section V-A).
  const std::array<double, 4> alone{1.0, 1.0, 1.0, 1.0};
  const std::array<double, 4> fair{0.25, 0.3, 0.9, 0.25};
  EXPECT_GE(min_fairness(fair, alone), 1.0);
  const std::array<double, 4> unfair{0.2, 0.9, 0.9, 0.9};
  EXPECT_LT(min_fairness(unfair, alone), 1.0);
}

TEST(Metrics, HspDominatedByWorstApp) {
  const std::array<double, 4> alone{1.0, 1.0, 1.0, 1.0};
  const std::array<double, 4> shared{0.01, 1.0, 1.0, 1.0};
  // One starved app drags Hsp near N * its speedup.
  EXPECT_LT(harmonic_weighted_speedup(shared, alone), 0.04);
}

TEST(Metrics, EvaluateMetricDispatch) {
  const std::array<double, 2> alone{1.0, 2.0};
  const std::array<double, 2> shared{0.5, 1.0};
  EXPECT_DOUBLE_EQ(
      evaluate_metric(Metric::HarmonicWeightedSpeedup, shared, alone),
      harmonic_weighted_speedup(shared, alone));
  EXPECT_DOUBLE_EQ(evaluate_metric(Metric::WeightedSpeedup, shared, alone),
                   weighted_speedup(shared, alone));
  EXPECT_DOUBLE_EQ(evaluate_metric(Metric::IpcSum, shared, alone),
                   ipc_sum(shared));
  EXPECT_DOUBLE_EQ(evaluate_metric(Metric::MinFairness, shared, alone),
                   min_fairness(shared, alone));
}

TEST(Metrics, MetricNames) {
  EXPECT_EQ(to_string(Metric::HarmonicWeightedSpeedup), "Hsp");
  EXPECT_EQ(to_string(Metric::MinFairness), "MinFairness");
  EXPECT_EQ(to_string(Metric::WeightedSpeedup), "Wsp");
  EXPECT_EQ(to_string(Metric::IpcSum), "IPCsum");
}

TEST(AppParams, Equation1Identities) {
  const AppParams p{0.008, 0.04};
  EXPECT_DOUBLE_EQ(p.ipc_alone(), 0.2);
  EXPECT_DOUBLE_EQ(p.ipc_at(0.004), 0.1);  // half bandwidth, half IPC
}

TEST(AppParams, HeterogeneityRsdMatchesDefinition) {
  const std::array<AppParams, 2> apps{AppParams{0.001, 0.01},
                                      AppParams{0.003, 0.01}};
  // APCs 1 and 3 (scaled): mean 2, stddev 1 -> RSD 50.
  EXPECT_NEAR(heterogeneity_rsd(apps), 50.0, 1e-9);
}

}  // namespace
}  // namespace bwpart::core
