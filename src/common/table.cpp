#include "common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "common/assert.hpp"

namespace bwpart {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  BWPART_ASSERT(!headers_.empty(), "table needs at least one column");
}

void TextTable::add_row(std::vector<std::string> cells) {
  BWPART_ASSERT(cells.size() == headers_.size(), "row arity mismatch");
  rows_.push_back(std::move(cells));
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      if (c + 1 < row.size()) {
        os << std::string(widths[c] - row[c].size() + 2, ' ');
      }
    }
    os << '\n';
  };
  emit_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
}

std::string TextTable::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

}  // namespace bwpart
