# Empty compiler generated dependencies file for bwpart_workload.
# This may be replaced when dependencies are built.
