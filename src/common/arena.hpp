// Bump-pointer arena for the advisor's batched request parsing.
//
// A batch of requests is parsed into arena-backed arrays (AppParams,
// weights, QoS requirements, copied id strings), solved, serialized, and
// then the whole arena is reset in O(1) for the next batch — the blocks are
// kept, so a warmed-up arena performs zero heap traffic per batch. Only
// trivially-destructible types may live here (nothing is ever destroyed,
// reset() just rewinds the bump pointer).
#pragma once

#include <cstddef>
#include <cstring>
#include <memory>
#include <new>
#include <span>
#include <string_view>
#include <type_traits>
#include <vector>

#include "common/assert.hpp"

namespace bwpart {

class Arena {
 public:
  explicit Arena(std::size_t block_bytes = std::size_t{1} << 16)
      : block_bytes_(block_bytes) {
    BWPART_ASSERT(block_bytes_ > 0, "arena block size must be positive");
  }

  /// Raw storage, aligned to `align` (a power of two).
  void* alloc_bytes(std::size_t bytes, std::size_t align) {
    BWPART_ASSERT(align != 0 && (align & (align - 1)) == 0,
                  "alignment must be a power of two");
    std::size_t off = (off_ + align - 1) & ~(align - 1);
    if (cur_ >= blocks_.size() || off + bytes > blocks_[cur_].size) {
      next_block(bytes + align);
      off = (off_ + align - 1) & ~(align - 1);
    }
    void* p = blocks_[cur_].data.get() + off;
    off_ = off + bytes;
    return p;
  }

  /// A default-initialized array of `n` Ts. T must be trivially
  /// destructible — the arena never runs destructors.
  template <typename T>
  std::span<T> alloc(std::size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena types must be trivially destructible");
    if (n == 0) return {};
    T* p = static_cast<T*>(alloc_bytes(n * sizeof(T), alignof(T)));
    for (std::size_t i = 0; i < n; ++i) ::new (static_cast<void*>(p + i)) T();
    return {p, n};
  }

  /// Copies `s` into the arena (so requests outlive the input buffer they
  /// were parsed from).
  std::string_view copy(std::string_view s) {
    if (s.empty()) return {};
    char* p = static_cast<char*>(alloc_bytes(s.size(), 1));
    std::memcpy(p, s.data(), s.size());
    return {p, s.size()};
  }

  /// Rewinds to empty, keeping every block for reuse.
  void reset() {
    cur_ = 0;
    off_ = 0;
  }

  /// Total capacity currently held (diagnostics).
  std::size_t capacity() const {
    std::size_t total = 0;
    for (const Block& b : blocks_) total += b.size;
    return total;
  }

 private:
  struct Block {
    std::unique_ptr<char[]> data;
    std::size_t size = 0;
  };

  void next_block(std::size_t at_least) {
    // Advance through retained blocks first; allocate only when exhausted
    // or when the next retained block is too small for this request.
    const std::size_t want = at_least > block_bytes_ ? at_least : block_bytes_;
    std::size_t next = cur_ >= blocks_.size() ? blocks_.size() : cur_ + 1;
    if (blocks_.empty()) next = 0;
    if (next >= blocks_.size() || blocks_[next].size < want) {
      Block b;
      b.size = want;
      b.data = std::make_unique<char[]>(b.size);
      blocks_.insert(blocks_.begin() + static_cast<std::ptrdiff_t>(next),
                     std::move(b));
    }
    cur_ = next;
    off_ = 0;
  }

  std::size_t block_bytes_;
  std::vector<Block> blocks_;
  std::size_t cur_ = 0;  ///< current block index (valid when !blocks_.empty())
  std::size_t off_ = 0;  ///< bump offset into the current block
};

}  // namespace bwpart
