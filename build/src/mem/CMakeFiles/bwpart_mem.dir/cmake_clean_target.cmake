file(REMOVE_RECURSE
  "libbwpart_mem.a"
)
