// Churn adaptation bench: static-once partitioning vs re-solve-on-churn.
//
// Replays deterministic churn schedules (departures, arrivals, phase
// changes) over the QoS mix under each objective twice — once with the
// shares frozen at the initial install (static-once, the deployment that
// profiles a tenant mix at admission time and never looks back) and once
// with the churn engine's online re-profile + re-solve — and reports how
// long each run spent violating its objective.
//
// The headline scenario is the canonical non-stationarity failure: the
// guaranteed app's phase changes to a much higher access intensity, so the
// Eq. 11 reservation computed from its admission-time profile
// under-provisions it from that point on. A work-conserving scheduler
// cannot self-heal this (the best-effort apps are consuming their shares),
// so static-once violates QoS for the rest of the run while the re-solver
// recovers within one reprofile window plus a few evaluation epochs.
//
//   churn_adaptation [--quick] [--seed N] [--out FILE]
//
// Emits BENCH_churn.json (schema 1) with per-scenario static/re-solve
// violation cycles, re-solve counts, mean adaptation lag, and Hsp/Wsp.
// Exit code is nonzero ONLY if re-solve-on-churn fails to strictly
// dominate static-once on QoS violation time in the headline scenario —
// wall-clock never fails the run, so CI gates on the adaptation claim
// while archiving the numbers.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "harness/churn.hpp"
#include "harness/experiment.hpp"
#include "workload/mixes.hpp"

namespace {

using namespace bwpart;

struct Side {
  Cycle qos_violation = 0;
  Cycle objective_violation = 0;
  std::uint64_t resolves = 0;
  double mean_lag = -1.0;  ///< -1 when no event's objective was ever re-met
  std::size_t unmet = 0;   ///< events whose objective was never re-met
  double hsp = 0.0;
  double wsp = 0.0;
};

Side summarize(const harness::ChurnRunResult& r) {
  Side s;
  s.qos_violation = r.qos_violation_cycles;
  s.objective_violation = r.objective_violation_cycles;
  s.resolves = r.resolves;
  s.hsp = r.base.hsp;
  s.wsp = r.base.wsp;
  double lag_sum = 0.0;
  std::size_t met = 0;
  for (const harness::ChurnEventOutcome& o : r.outcomes) {
    if (o.adaptation_lag == kNoCycle) {
      ++s.unmet;
    } else {
      lag_sum += static_cast<double>(o.adaptation_lag);
      ++met;
    }
  }
  if (met > 0) s.mean_lag = lag_sum / static_cast<double>(met);
  return s;
}

struct Scenario {
  std::string name;
  core::Scheme scheme;
  std::vector<core::QosRequirement> qos;
  harness::ChurnSchedule schedule;
  Side fixed;    ///< static-once
  Side resolve;  ///< re-solve-on-churn
};

/// Runs one scenario's static and re-solve sides from a shared profile
/// snapshot (identical admission-time estimates, so the comparison isolates
/// the re-solve policy).
void run_scenario(const harness::Experiment& exp,
                  const harness::ProfileSnapshot& snap, Scenario& sc) {
  harness::ChurnRunConfig cfg;
  cfg.scheme = sc.scheme;
  cfg.qos = sc.qos;
  cfg.reprofile_window = 30'000;
  cfg.eval_epoch = 25'000;
  cfg.resolve_on_churn = false;
  sc.fixed = summarize(exp.measure_churn_from(snap, sc.schedule, cfg));
  cfg.resolve_on_churn = true;
  sc.resolve = summarize(exp.measure_churn_from(snap, sc.schedule, cfg));
}

void print_side(std::FILE* f, const char* key, const Side& s,
                const char* trailer) {
  std::fprintf(f,
               "      \"%s\": {\"qos_violation_cycles\": %llu, "
               "\"objective_violation_cycles\": %llu, \"resolves\": %llu,\n"
               "        \"mean_adaptation_lag\": %.1f, \"events_unmet\": %zu, "
               "\"hsp\": %.6f, \"wsp\": %.6f}%s\n",
               key, static_cast<unsigned long long>(s.qos_violation),
               static_cast<unsigned long long>(s.objective_violation),
               static_cast<unsigned long long>(s.resolves), s.mean_lag,
               s.unmet, s.hsp, s.wsp, trailer);
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_churn.json";
  std::vector<char*> rest;
  rest.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      rest.push_back(argv[i]);
    }
  }
  bench::Options opt = bench::parse_options(static_cast<int>(rest.size()),
                                            rest.data(), 600'000);
  // The churn engine needs a measure window long enough for the static
  // side's violation tail to be unambiguous; --quick halves it instead of
  // the usual quartering (parse_options already divided by 4).
  opt.phases.warmup_cycles = 10'000;
  opt.phases.profile_cycles = opt.quick ? 100'000 : 150'000;
  opt.phases.measure_cycles = opt.quick ? 300'000 : 600'000;
  const Cycle m = opt.phases.measure_cycles;

  // hmmer (index 3 in the QoS mix) is the guaranteed app throughout.
  const core::QosRequirement guaranteed{3, 0.6};
  std::vector<Scenario> scenarios;
  {
    // Headline: the guaranteed app's phase shifts to ~1.7x its profiled
    // access intensity, stranding the admission-time reservation.
    Scenario sc;
    sc.name = "qos-phase-shift";
    sc.scheme = core::Scheme::SquareRoot;
    sc.qos = {guaranteed};
    harness::PhaseKnobs hungrier;
    hungrier.api = 0.008;
    sc.schedule.phase(m / 4, 3, hungrier);
    scenarios.push_back(std::move(sc));
  }
  {
    // Tenancy churn around the guaranteed app: the best-effort population
    // shrinks and regrows while Eq. 11 must keep holding.
    Scenario sc;
    sc.name = "qos-tenancy-churn";
    sc.scheme = core::Scheme::SquareRoot;
    sc.qos = {guaranteed};
    sc.schedule.depart(m / 4, 1).arrive(m * 11 / 20, 1).depart(m * 29 / 40, 0);
    scenarios.push_back(std::move(sc));
  }
  {
    // Best-effort objective (weighted speedup, no reservations): a
    // departure plus a phase shift; the violation clock is the Eq. 2
    // allocation check over the live set.
    Scenario sc;
    sc.name = "wsp-tenancy-churn";
    sc.scheme = core::Scheme::Proportional;
    harness::PhaseKnobs hungrier;
    hungrier.api = 0.008;
    sc.schedule.depart(m / 4, 1).phase(m / 2, 3, hungrier).arrive(
        m * 3 / 4, 1);
    scenarios.push_back(std::move(sc));
  }

  const auto apps = workload::resolve_mix(workload::qos_mix1());
  const harness::Experiment exp(harness::SystemConfig{}, apps, opt.phases);
  std::fprintf(stderr, "profiling %s once (%llu cycles)...\n",
               std::string(workload::qos_mix1().name).c_str(),
               static_cast<unsigned long long>(opt.phases.profile_cycles));
  const harness::ProfileSnapshot snap = exp.capture_profile();
  for (Scenario& sc : scenarios) {
    std::fprintf(stderr, "scenario %s (%zu events, static + re-solve)...\n",
                 sc.name.c_str(), sc.schedule.events.size());
    run_scenario(exp, snap, sc);
  }

  // The acceptance gate: re-solve strictly dominates static-once on QoS
  // violation time in the headline scenario, and never does worse in any
  // QoS scenario.
  bool dominates = true;
  for (const Scenario& sc : scenarios) {
    if (sc.qos.empty()) continue;
    if (sc.resolve.qos_violation > sc.fixed.qos_violation) dominates = false;
  }
  if (scenarios[0].resolve.qos_violation >= scenarios[0].fixed.qos_violation) {
    dominates = false;
  }

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 2;
  }
  std::fprintf(f,
               "{\n"
               "  \"schema\": 1,\n"
               "  \"mix\": \"%s\",\n"
               "  \"measure_cycles\": %llu,\n"
               "  \"reprofile_window\": 30000,\n"
               "  \"eval_epoch\": 25000,\n"
               "  \"scenarios\": [\n",
               std::string(workload::qos_mix1().name).c_str(),
               static_cast<unsigned long long>(m));
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    const Scenario& sc = scenarios[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"scheme\": \"%s\", \"qos\": %s, "
                 "\"events\": %zu, \"schedule_fp\": \"%016llx\",\n",
                 sc.name.c_str(), core::to_string(sc.scheme).c_str(),
                 sc.qos.empty() ? "false" : "true", sc.schedule.events.size(),
                 static_cast<unsigned long long>(sc.schedule.fingerprint()));
    print_side(f, "static", sc.fixed, ",");
    print_side(f, "resolve", sc.resolve, "");
    std::fprintf(f, "    }%s\n", i + 1 < scenarios.size() ? "," : "");
  }
  std::fprintf(f,
               "  ],\n"
               "  \"resolve_dominates\": %s\n"
               "}\n",
               dominates ? "true" : "false");
  std::fclose(f);

  std::printf("%-18s %10s %12s %12s %9s %10s\n", "scenario", "side",
              "qos_viol", "obj_viol", "resolves", "mean_lag");
  for (const Scenario& sc : scenarios) {
    const auto row = [&](const char* side, const Side& s) {
      std::printf("%-18s %10s %12llu %12llu %9llu %10.0f\n", sc.name.c_str(),
                  side, static_cast<unsigned long long>(s.qos_violation),
                  static_cast<unsigned long long>(s.objective_violation),
                  static_cast<unsigned long long>(s.resolves), s.mean_lag);
    };
    row("static", sc.fixed);
    row("re-solve", sc.resolve);
  }
  if (!dominates) {
    std::fprintf(stderr,
                 "FAIL: re-solve-on-churn does not dominate static-once on "
                 "QoS violation time\n");
    return 1;
  }
  std::printf("re-solve dominates static-once on QoS violation time\n");
  return 0;
}
