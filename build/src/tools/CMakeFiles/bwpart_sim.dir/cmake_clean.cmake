file(REMOVE_RECURSE
  "CMakeFiles/bwpart_sim.dir/bwpart_sim.cpp.o"
  "CMakeFiles/bwpart_sim.dir/bwpart_sim.cpp.o.d"
  "bwpart_sim"
  "bwpart_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bwpart_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
