# Empty compiler generated dependencies file for ablation_enforcement.
# This may be replaced when dependencies are built.
