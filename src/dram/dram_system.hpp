// Channel-level DRAM engine in the style of DRAMSim2: per-bank state
// machines plus rank constraints (tRRD, tFAW, tWTR, refresh) and the shared
// data bus. The memory controller decides *which* request to serve; this
// class decides *whether* a specific DRAM command is legal right now and
// evolves device state when it issues.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <span>
#include <vector>

#include "common/types.hpp"
#include "dram/address_map.hpp"
#include "dram/bank.hpp"
#include "dram/command.hpp"
#include "dram/config.hpp"
#include "dram/protocol_checker.hpp"

namespace bwpart::dram {

/// "No such tick" sentinel for the event-query API (never a valid tick).
inline constexpr Tick kNoTick = std::numeric_limits<Tick>::max();

struct DramStats {
  std::uint64_t activates = 0;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t precharges = 0;  // explicit PRE commands only
  std::uint64_t refreshes = 0;
  std::uint64_t data_bus_busy_ticks = 0;  ///< summed over all channels
  std::uint64_t ticks = 0;
  /// Sum over ranks of ticks spent in precharge power-down.
  std::uint64_t powerdown_rank_ticks = 0;
  /// Number of channels busy ticks are summed over (set by DramSystem).
  std::uint32_t channels = 1;

  /// Per-channel split of data_bus_busy_ticks (observability: the epoch
  /// sampler derives per-channel utilization from deltas of these). Always
  /// sums to data_bus_busy_ticks; sized to `channels`.
  std::vector<std::uint64_t> channel_busy_ticks;

  std::uint64_t column_accesses() const { return reads + writes; }
  /// Fraction of tick-channel slots that carried data (bandwidth
  /// utilization across the whole memory system, always in [0, 1]).
  double bus_utilization() const {
    return ticks == 0 ? 0.0
                      : static_cast<double>(data_bus_busy_ticks) /
                            (static_cast<double>(ticks) *
                             static_cast<double>(channels));
  }
  /// Utilization of one channel's data bus, in [0, 1].
  double channel_utilization(std::uint32_t channel) const {
    return ticks == 0 ? 0.0
                      : static_cast<double>(channel_busy_ticks[channel]) /
                            static_cast<double>(ticks);
  }
};

/// Result of issuing a command. For column commands, `data_finish` is the
/// bus tick at which the last data beat has transferred (request complete).
struct IssueResult {
  Tick data_finish = 0;
};

class DramSystem {
 public:
  explicit DramSystem(const DramConfig& cfg,
                      MapScheme scheme = MapScheme::ChanRowColBankRank);

  const DramConfig& config() const { return cfg_; }
  const TimingsTicks& timings() const { return t_; }
  const AddressMap& mapper() const { return map_; }
  const DramStats& stats() const { return stats_; }
  void reset_stats() {
    stats_ = DramStats{};
    stats_.channels = cfg_.channels;
    stats_.channel_busy_ticks.assign(cfg_.channels, 0);
  }

  /// Advances device-internal housekeeping (refresh scheduling) to `now`.
  /// Must be called once per bus tick, before can_issue/issue.
  void tick(Tick now);

  /// Earliest tick >= `from` at which tick() could change device state on
  /// its own: a refresh deadline arriving, a refresh drain making progress
  /// (a bank becoming closable or the refresh firing), or a power-down
  /// transition (wake completing, or an idle rank becoming eligible to
  /// enter). `rank_pending[channel * ranks + rank]` is the number of
  /// controller requests waiting on each rank: the controller notifies
  /// those ranks every tick, which keeps them out of power-down and, for a
  /// powered-down rank, makes the notify itself the next event. Returns
  /// kNoTick when no internal event can ever fire from the current state.
  /// Conservative in the safe direction: it may report a tick at which
  /// nothing happens, but never skips past a state change.
  Tick next_event_tick(Tick from,
                       std::span<const std::uint32_t> rank_pending) const;

  /// Earliest tick >= `from` at which `cmd` could first pass can_issue(),
  /// assuming device state stays frozen until then (no other command
  /// issues, no refresh/power-down event fires). Exact for pure timing
  /// constraints; returns kNoTick when the command is blocked on a state
  /// change instead (powered-down rank, refresh-pending Activate, wrong /
  /// missing open row), whose timing next_event_tick() covers.
  Tick earliest_issue_tick(const Command& cmd, Tick from) const;

  /// Batch-advances time over [from, to), a range tick() proved dead via
  /// next_event_tick(): accounts the skipped ticks in the stats (including
  /// per-rank power-down residency) and keeps `last_activity` of ranks with
  /// pending work pinned, exactly as per-tick notify_rank_pending calls
  /// would have. `from` must continue the tick sequence and `to` must not
  /// exceed the next event tick.
  void skip_ticks(Tick from, Tick to,
                  std::span<const std::uint32_t> rank_pending);

  /// True if the bank addressed by `loc` currently has `loc.row` open.
  bool is_row_hit(const Location& loc) const;
  /// True if the addressed bank has any row open.
  bool is_row_open(const Location& loc) const;

  /// The next command a request at `loc` needs, honouring the page policy:
  /// row hit -> column command; open conflicting row -> Precharge;
  /// closed bank -> Activate.
  CommandType required_command(const Location& loc, AccessType type) const;

  /// Checks every timing constraint (bank, rank, bus, pending refresh) for
  /// issuing `cmd` at tick `now`.
  bool can_issue(const Command& cmd, Tick now) const;

  /// Same as can_issue but ignoring data-bus occupancy — used by the
  /// controller to detect a column command whose *only* blocker is the bus,
  /// so it can reserve the bus for it instead of letting lower-priority
  /// commands perpetually push the bus-free time out (rank-switch
  /// starvation).
  bool can_issue_ignoring_bus(const Command& cmd, Tick now) const;

  /// Issues `cmd`; all constraints must hold (checked).
  IssueResult issue(const Command& cmd, Tick now);

  /// True while a rank in the channel is draining for / undergoing refresh.
  /// Exposed so interference accounting can distinguish refresh stalls from
  /// inter-application interference.
  bool refresh_blocked(std::uint32_t channel, std::uint32_t rank) const;

  /// Power-down management (when cfg.enable_powerdown): the controller
  /// calls this each tick for every rank that has pending requests; a
  /// powered-down rank then begins its tXP wake-up. Idle ranks drop into
  /// power-down automatically inside tick().
  void notify_rank_pending(std::uint32_t channel, std::uint32_t rank,
                           Tick now);
  bool powered_down(std::uint32_t channel, std::uint32_t rank) const;

  /// The shadow protocol checker validating every issued command, or
  /// nullptr when the build was configured with BWPART_CHECK=OFF.
  const ProtocolChecker* protocol_checker() const { return checker_.get(); }

  /// Snapshot hooks: every bank/rank/channel state machine, the stats block
  /// and the tick cursor. The shadow protocol checker travels as an
  /// optional length-prefixed section: a checker-less build skips a
  /// checker-carrying snapshot's section, while restoring a checker-less
  /// snapshot into a checking build fails loudly (the shadow would be out
  /// of sync and report false violations).
  void save_state(snap::Writer& w) const;
  void restore_state(snap::Reader& r);

 private:
  struct RankState {
    Tick last_act = 0;           // tRRD reference; 0 means "none yet"
    bool any_act = false;
    Tick act_window[4] = {};     // ring buffer of recent ACT ticks (tFAW)
    std::uint32_t act_count = 0; // total ACTs (ring index = count % 4)
    Tick last_col = 0;           // tCCD reference
    bool any_col = false;
    Tick write_data_end = 0;     // tWTR reference
    bool any_write = false;
    Tick next_refresh_due = 0;
    bool refresh_pending = false;
    // Precharge power-down state.
    Tick last_activity = 0;
    bool pd = false;
    bool waking = false;
    Tick wake_ready = 0;
  };

  struct ChannelState {
    Tick bus_free_at = 0;  // first tick the data bus is free
    std::uint32_t bus_last_rank = 0;  // rank of the last data burst (tRTRS)
    bool bus_has_last = false;
  };

  Bank& bank_at(const Location& loc);
  const Bank& bank_at(const Location& loc) const;
  RankState& rank_at(std::uint32_t channel, std::uint32_t rank);
  const RankState& rank_at(std::uint32_t channel, std::uint32_t rank) const;

  bool rank_allows_activate(const RankState& r, Tick now) const;
  bool bus_allows(const ChannelState& ch, Tick data_start,
                  std::uint32_t rank) const;
  /// Earliest tick a column command with data latency `lat` clears the
  /// data-bus constraint (tRTRS gap included).
  Tick bus_ready_tick(const ChannelState& ch, Tick lat,
                      std::uint32_t rank) const;
  bool can_issue_impl(const Command& cmd, Tick now, bool check_bus) const;
  void update_powerdown(RankState& r, std::uint32_t channel,
                        std::uint32_t rank, Tick now);
  /// Attempts to start the pending refresh of one rank.
  void try_refresh(std::uint32_t channel, std::uint32_t rank, Tick now);

  DramConfig cfg_;
  TimingsTicks t_;
  AddressMap map_;
  std::vector<Bank> banks_;          // [channel][rank][bank] flattened
  std::vector<RankState> ranks_;     // [channel][rank] flattened
  std::vector<ChannelState> chans_;  // [channel]
  std::unique_ptr<ProtocolChecker> checker_;  // shadow model (BWPART_CHECK)
  DramStats stats_;
  Tick pd_threshold_ = 0;
  Tick last_tick_ = 0;
  bool ticked_ = false;
};

}  // namespace bwpart::dram
