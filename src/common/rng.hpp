// Deterministic, fast pseudo-random source for the synthetic workload
// generators. xoshiro256** (Blackman & Vigna) — tiny state, excellent
// statistical quality, and fully reproducible across platforms, which the
// experiment harness relies on for repeatable runs.
#pragma once

#include <cstdint>

#include "common/assert.hpp"
#include "common/snapshot_io.hpp"

namespace bwpart {

class Rng {
 public:
  /// Seeds the generator via splitmix64 so that any 64-bit seed (including
  /// zero) yields a well-mixed initial state.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  /// Uniform 64-bit word.
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound).
  std::uint64_t next_below(std::uint64_t bound) {
    BWPART_ASSERT(bound > 0, "next_below(0)");
    // Lemire's multiply-shift rejection-free approximation is fine here:
    // bound is tiny relative to 2^64 so bias is negligible, but we use the
    // rejection variant anyway for exactness.
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const std::uint64_t r = next_u64();
      if (r >= threshold) return r % bound;
    }
  }

  /// Bernoulli trial with probability p.
  bool next_bool(double p) { return next_double() < p; }

  /// Geometric number of failures before first success, success prob p.
  /// Used for inter-arrival gaps in the trace generators.
  std::uint64_t next_geometric(double p);

  /// Snapshot hooks: the full xoshiro256** state, so a restored stream
  /// continues bit-identically to the uninterrupted one.
  void save_state(snap::Writer& w) const {
    for (const std::uint64_t word : state_) w.u64(word);
  }
  void restore_state(snap::Reader& r) {
    for (std::uint64_t& word : state_) word = r.u64();
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
};

}  // namespace bwpart
