file(REMOVE_RECURSE
  "CMakeFiles/fig3_qos.dir/fig3_qos.cpp.o"
  "CMakeFiles/fig3_qos.dir/fig3_qos.cpp.o.d"
  "fig3_qos"
  "fig3_qos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_qos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
