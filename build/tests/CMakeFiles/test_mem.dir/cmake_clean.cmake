file(REMOVE_RECURSE
  "CMakeFiles/test_mem.dir/mem/test_atlas_tcm.cpp.o"
  "CMakeFiles/test_mem.dir/mem/test_atlas_tcm.cpp.o.d"
  "CMakeFiles/test_mem.dir/mem/test_batch_frfcfs.cpp.o"
  "CMakeFiles/test_mem.dir/mem/test_batch_frfcfs.cpp.o.d"
  "CMakeFiles/test_mem.dir/mem/test_controller.cpp.o"
  "CMakeFiles/test_mem.dir/mem/test_controller.cpp.o.d"
  "CMakeFiles/test_mem.dir/mem/test_controller_timing.cpp.o"
  "CMakeFiles/test_mem.dir/mem/test_controller_timing.cpp.o.d"
  "CMakeFiles/test_mem.dir/mem/test_related_schedulers.cpp.o"
  "CMakeFiles/test_mem.dir/mem/test_related_schedulers.cpp.o.d"
  "CMakeFiles/test_mem.dir/mem/test_schedulers.cpp.o"
  "CMakeFiles/test_mem.dir/mem/test_schedulers.cpp.o.d"
  "CMakeFiles/test_mem.dir/mem/test_write_drain.cpp.o"
  "CMakeFiles/test_mem.dir/mem/test_write_drain.cpp.o.d"
  "test_mem"
  "test_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
