#include "common/pbt.hpp"

#include <cmath>
#include <cstdlib>
#include <sstream>

#include "common/assert.hpp"

namespace bwpart::pbt {

std::uint64_t base_seed(std::uint64_t fallback) {
  const char* env = std::getenv("BWPART_PBT_SEED");
  if (env == nullptr || *env == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(env, &end, 0);
  if (end == env) return fallback;  // unparsable; fall back silently
  return static_cast<std::uint64_t>(parsed);
}

std::uint64_t case_seed(std::uint64_t base, std::uint64_t index) {
  // splitmix64 finalizer over a combination of base and index; distinct
  // cases land in statistically independent RNG streams.
  std::uint64_t z = base ^ (index * 0x9e3779b97f4a7c15ULL +
                            0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::string Result::report() const {
  std::ostringstream os;
  if (ok) {
    os << "property '" << name << "' held for " << cases_run
       << " cases (base seed " << seed << ")";
    return os.str();
  }
  os << "property '" << name << "' FAILED\n"
     << "  " << message << "\n"
     << "  counterexample (after " << shrink_steps
     << " shrink steps): " << counterexample << "\n"
     << "  base seed " << seed << ", case " << failing_index
     << " (case seed " << failing_seed << ")\n"
     << "  reproduce: BWPART_PBT_SEED=" << seed
     << " <test binary> --gtest_filter=<this test>";
  return os.str();
}

double gen_double(Rng& rng, double lo, double hi) {
  BWPART_ASSERT(lo < hi, "empty double range");
  return lo + rng.next_double() * (hi - lo);
}

double gen_log_double(Rng& rng, double lo, double hi) {
  BWPART_ASSERT(lo > 0.0 && lo < hi, "log range needs 0 < lo < hi");
  const double u = gen_double(rng, std::log(lo), std::log(hi));
  return std::exp(u);
}

std::uint64_t gen_uint(Rng& rng, std::uint64_t lo, std::uint64_t hi) {
  BWPART_ASSERT(lo <= hi, "empty integer range");
  return lo + rng.next_below(hi - lo + 1);
}

std::vector<double> shrink_double(double x, double anchor) {
  std::vector<double> out;
  if (x == anchor) return out;
  out.push_back(anchor);                  // most aggressive first
  out.push_back(anchor + (x - anchor) / 2.0);
  const double nudged = anchor + (x - anchor) * 0.9;
  if (nudged != x) out.push_back(nudged);
  return out;
}

std::vector<std::vector<double>> shrink_double_vec(
    const std::vector<double>& v, std::size_t min_size, double anchor) {
  std::vector<std::vector<double>> out;
  // Structural shrinks: drop one element at a time.
  if (v.size() > min_size) {
    for (std::size_t i = 0; i < v.size(); ++i) {
      std::vector<double> smaller;
      smaller.reserve(v.size() - 1);
      for (std::size_t j = 0; j < v.size(); ++j) {
        if (j != i) smaller.push_back(v[j]);
      }
      out.push_back(std::move(smaller));
    }
  }
  // Value shrinks: move one element toward the anchor.
  for (std::size_t i = 0; i < v.size(); ++i) {
    for (double candidate : shrink_double(v[i], anchor)) {
      std::vector<double> copy = v;
      copy[i] = candidate;
      out.push_back(std::move(copy));
    }
  }
  return out;
}

std::string describe(std::span<const double> values) {
  std::ostringstream os;
  os.precision(12);
  os << "[";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i != 0) os << ", ";
    os << values[i];
  }
  os << "]";
  return os.str();
}

}  // namespace bwpart::pbt
