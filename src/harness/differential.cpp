#include "harness/differential.hpp"

#include <cstring>
#include <vector>

#include "common/parallel.hpp"

namespace bwpart::harness {

std::uint64_t hash_bytes(const void* data, std::size_t size,
                         std::uint64_t h) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t hash_doubles(std::span<const double> values, std::uint64_t h) {
  for (double v : values) {
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    h = hash_bytes(&bits, sizeof(bits), h);
  }
  return h;
}

std::uint64_t fingerprint(const RunResult& r) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const auto scheme_byte = static_cast<unsigned char>(r.scheme);
  h = hash_bytes(&scheme_byte, 1, h);
  for (const core::AppParams& p : r.params) {
    const double fields[] = {p.apc_alone, p.api};
    h = hash_doubles(fields, h);
  }
  h = hash_doubles(r.ipc_shared, h);
  h = hash_doubles(r.apc_shared, h);
  const double scalars[] = {r.total_apc, r.bus_utilization, r.hsp,
                            r.wsp,       r.ipcsum,          r.min_fairness};
  return hash_doubles(scalars, h);
}

SweepDifference diff_parallel_sweep(
    std::size_t n, const std::function<std::uint64_t(std::size_t)>& job,
    std::size_t threads) {
  std::vector<std::uint64_t> serial(n, 0);
  for (std::size_t i = 0; i < n; ++i) serial[i] = job(i);

  std::vector<std::uint64_t> parallel(n, 0);
  parallel_for(
      n, [&](std::size_t i) { parallel[i] = job(i); }, threads);

  SweepDifference d;
  for (std::size_t i = 0; i < n; ++i) {
    if (serial[i] != parallel[i]) {
      d.identical = false;
      d.first_mismatch = i;
      d.serial_fp = serial[i];
      d.parallel_fp = parallel[i];
      break;
    }
  }
  return d;
}

}  // namespace bwpart::harness
