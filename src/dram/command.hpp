// DRAM command vocabulary shared between the bank state machines, the
// channel engine and the memory controller.
#pragma once

#include <cstdint>

#include "common/types.hpp"
#include "dram/address_map.hpp"

namespace bwpart::dram {

enum class CommandType : std::uint8_t {
  Activate,
  Read,       ///< column read, row stays open
  ReadAp,     ///< column read with auto-precharge (close-page policy)
  Write,
  WriteAp,
  Precharge,
  Refresh,    ///< all-bank refresh of one rank
};

constexpr bool is_column_command(CommandType t) {
  return t == CommandType::Read || t == CommandType::ReadAp ||
         t == CommandType::Write || t == CommandType::WriteAp;
}

constexpr bool is_read_command(CommandType t) {
  return t == CommandType::Read || t == CommandType::ReadAp;
}

constexpr bool is_write_command(CommandType t) {
  return t == CommandType::Write || t == CommandType::WriteAp;
}

struct Command {
  CommandType type = CommandType::Activate;
  Location loc{};
  AppId app = kNoApp;        ///< originating application (for accounting)
  std::uint64_t req_id = 0;  ///< originating memory request id
};

constexpr const char* to_string(CommandType t) {
  switch (t) {
    case CommandType::Activate: return "ACT";
    case CommandType::Read: return "RD";
    case CommandType::ReadAp: return "RDA";
    case CommandType::Write: return "WR";
    case CommandType::WriteAp: return "WRA";
    case CommandType::Precharge: return "PRE";
    case CommandType::Refresh: return "REF";
  }
  return "?";
}

}  // namespace bwpart::dram
