// End-to-end smoke tests for the bwpart_sim command-line driver, exercising
// the observability outputs (--metrics-out / --trace-out / --epochs-out /
// --epoch-cycles) and the snapshot checkpointing flags (--snapshot-out /
// --resume) as a user would: real process invocations, outputs validated
// with the in-tree JSON parser, resumed results compared byte-for-byte
// against straight runs, and corrupt/mismatched snapshots rejected with a
// nonzero exit.
//
// The binary under test is passed as argv[1] by ctest
// ($<TARGET_FILE:bwpart_sim>), so the suite needs a custom main.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "../obs/mini_json.hpp"

namespace {

using bwpart::testjson::Value;
using bwpart::testjson::ValuePtr;

std::string g_sim_path;

std::string tmp_path(const std::string& name) {
  return testing::TempDir() + "cli_smoke_" + name;
}

/// Runs `cmd` with stdout redirected to a temp file; returns the process
/// exit code and fills `out` with the captured stdout.
int run_cmd(const std::string& cmd, std::string* out = nullptr) {
  const std::string capture = tmp_path("stdout.txt");
  const int status =
      std::system((cmd + " > " + capture + " 2> /dev/null").c_str());
  if (out != nullptr) {
    std::ifstream in(capture);
    std::stringstream buf;
    buf << in.rdbuf();
    *out = buf.str();
  }
  std::remove(capture.c_str());
  if (status == -1) return -1;
  return WEXITSTATUS(status);
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

const char kBaseArgs[] = " --mix hetero-3 --cycles 60000 --csv";

// All four observability flags in one invocation: the metrics document and
// the Chrome trace must parse as JSON with the expected structure, the
// epoch series must parse line-by-line as JSONL.
TEST(CliSmoke, ObservabilityOutputsAreValidJson) {
  const std::string metrics = tmp_path("metrics.json");
  const std::string trace = tmp_path("trace.json");
  const std::string epochs = tmp_path("epochs.jsonl");
  const int rc = run_cmd(g_sim_path + kBaseArgs + " --scheme Equal" +
                         " --metrics-out " + metrics + " --trace-out " +
                         trace + " --epochs-out " + epochs +
                         " --epoch-cycles 20000");
  ASSERT_EQ(rc, 0);

  const ValuePtr mdoc = bwpart::testjson::parse(read_file(metrics));
  ASSERT_TRUE(mdoc->is_object());
  ASSERT_TRUE(mdoc->has("schema"));
  ASSERT_TRUE(mdoc->has("metrics"));
  EXPECT_GT(mdoc->at("metrics").size(), 0u);

  const ValuePtr tdoc = bwpart::testjson::parse(read_file(trace));
  ASSERT_TRUE(tdoc->is_object());
  ASSERT_TRUE(tdoc->has("traceEvents"));
  EXPECT_TRUE(tdoc->at("traceEvents").is_array());

  std::ifstream ein(epochs);
  std::string line;
  std::size_t rows = 0;
  while (std::getline(ein, line)) {
    if (line.empty()) continue;
    const ValuePtr row = bwpart::testjson::parse(line);
    EXPECT_TRUE(row->is_object()) << "epoch row " << rows;
    ++rows;
  }
  EXPECT_GT(rows, 0u) << "epoch series is empty despite --epoch-cycles";

  std::remove(metrics.c_str());
  std::remove(trace.c_str());
  std::remove(epochs.c_str());
}

// --snapshot-out writes a checkpoint and produces the same CSV as a plain
// run; --resume forks from the checkpoint and must reproduce that CSV
// byte-for-byte (the bit-identity contract, observed end-to-end through the
// CLI).
TEST(CliSmoke, SnapshotResumeReproducesStraightRunExactly) {
  const std::string snap = tmp_path("profile.bwps");
  std::string straight, with_save, resumed;
  ASSERT_EQ(run_cmd(g_sim_path + kBaseArgs + " --scheme all", &straight), 0);
  ASSERT_EQ(run_cmd(g_sim_path + kBaseArgs + " --scheme all --snapshot-out " +
                        snap,
                    &with_save),
            0);
  std::ifstream sf(snap, std::ios::binary);
  ASSERT_TRUE(sf.good()) << "snapshot file was not written";
  sf.close();
  ASSERT_EQ(run_cmd(g_sim_path + kBaseArgs + " --scheme all --resume " + snap,
                    &resumed),
            0);
  EXPECT_FALSE(straight.empty());
  EXPECT_EQ(straight, with_save);
  EXPECT_EQ(straight, resumed);
  std::remove(snap.c_str());
}

// A truncated snapshot and a snapshot from a different configuration are
// both rejected with a nonzero exit instead of silently producing numbers.
TEST(CliSmoke, CorruptOrMismatchedSnapshotsAreRejected) {
  const std::string snap = tmp_path("reject.bwps");
  ASSERT_EQ(run_cmd(g_sim_path + kBaseArgs +
                    " --scheme Equal --snapshot-out " + snap),
            0);

  // Different mix and different seed: the config fingerprint must not match.
  EXPECT_NE(run_cmd(g_sim_path + " --mix homo-1 --cycles 60000 --csv" +
                    " --scheme Equal --resume " + snap),
            0);
  EXPECT_NE(run_cmd(g_sim_path + kBaseArgs +
                    " --seed 7 --scheme Equal --resume " + snap),
            0);

  // Truncate the container: loud failure, nonzero exit.
  const std::string whole = read_file(snap);
  ASSERT_GT(whole.size(), 64u);
  const std::string trunc = tmp_path("truncated.bwps");
  std::ofstream ts(trunc, std::ios::binary);
  ts.write(whole.data(), static_cast<std::streamsize>(whole.size() / 2));
  ts.close();
  EXPECT_NE(run_cmd(g_sim_path + kBaseArgs + " --scheme Equal --resume " +
                    trunc),
            0);

  // Flip one byte mid-file: checksum failure, nonzero exit.
  std::string flipped = whole;
  flipped[flipped.size() / 2] =
      static_cast<char>(flipped[flipped.size() / 2] ^ 0x10);
  const std::string flip = tmp_path("flipped.bwps");
  std::ofstream fs(flip, std::ios::binary);
  fs.write(flipped.data(), static_cast<std::streamsize>(flipped.size()));
  fs.close();
  EXPECT_NE(run_cmd(g_sim_path + kBaseArgs + " --scheme Equal --resume " +
                    flip),
            0);

  std::remove(snap.c_str());
  std::remove(trunc.c_str());
  std::remove(flip.c_str());
}

// --dram-gen swaps the whole timing matrix in from the generation registry:
// each generation must run cleanly and move the numbers, and naming the
// baseline explicitly must reproduce the default run byte-for-byte.
TEST(CliSmoke, DramGenerationFlagSelectsRegistryConfigs) {
  std::string ddr2, ddr2_named, ddr4, hbm;
  const std::string base = g_sim_path + kBaseArgs + " --scheme Equal";
  ASSERT_EQ(run_cmd(base, &ddr2), 0);
  ASSERT_EQ(run_cmd(base + " --dram-gen ddr2_400", &ddr2_named), 0);
  ASSERT_EQ(run_cmd(base + " --dram-gen ddr4_2400", &ddr4), 0);
  ASSERT_EQ(run_cmd(base + " --dram-gen hbm_like", &hbm), 0);
  EXPECT_FALSE(ddr2.empty());
  EXPECT_FALSE(ddr4.empty());
  EXPECT_EQ(ddr2, ddr2_named)
      << "naming the default generation must not change anything";
  EXPECT_NE(ddr2, ddr4) << "DDR4 timings left the results untouched";
  EXPECT_NE(ddr4, hbm) << "HBM-class config left the results untouched";
}

// An unknown generation name must fail fast with a nonzero exit and a
// stderr message naming both the bad argument and the registered sets —
// not fall back to some default matrix.
TEST(CliSmoke, UnknownDramGenerationIsRejectedLoudly) {
  const std::string errfile = tmp_path("gen_err.txt");
  const int status =
      std::system((g_sim_path + kBaseArgs +
                   " --scheme Equal --dram-gen ddr9_bogus > /dev/null 2> " +
                   errfile)
                      .c_str());
  ASSERT_NE(status, -1);
  EXPECT_NE(WEXITSTATUS(status), 0);
  const std::string err = read_file(errfile);
  EXPECT_NE(err.find("ddr9_bogus"), std::string::npos) << err;
  EXPECT_NE(err.find("ddr4_2400"), std::string::npos)
      << "error should list the registered generations: " << err;
  std::remove(errfile.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  testing::InitGoogleTest(&argc, argv);
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <path-to-bwpart_sim>\n", argv[0]);
    return 2;
  }
  g_sim_path = argv[1];
  return RUN_ALL_TESTS();
}
