// Numeric cross-check for the paper's derived optima: a projected-gradient
// optimizer over the feasible allocation polytope
//
//   { x : sum_i x_i = min(B, sum_i cap_i),  0 <= x_i <= cap_i }
//
// maximizing any of the four system metrics. Section III derives each
// optimal partitioning in closed form; this solver verifies those
// derivations from first principles (tests assert both agree), and lets
// users optimize custom IPC-based objectives the paper does not cover.
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "core/app_params.hpp"
#include "core/metrics.hpp"

namespace bwpart::core {

struct OptimizerConfig {
  int iterations = 4000;
  double initial_step_fraction = 0.05;  ///< of the bandwidth budget
  double gradient_epsilon_fraction = 1e-6;
};

/// An arbitrary objective over the per-application APC allocation.
using AllocationObjective =
    std::function<double(std::span<const double> apc)>;

/// Euclidean projection of `y` onto the capped simplex (exposed for tests).
std::vector<double> project_capped_simplex(std::span<const double> y,
                                           std::span<const double> caps,
                                           double total);

/// Maximizes `objective` over feasible allocations for workload `apps` and
/// bandwidth `b`. Deterministic; starts from the proportional allocation.
std::vector<double> optimize_allocation(const AllocationObjective& objective,
                                        std::span<const AppParams> apps,
                                        double b,
                                        const OptimizerConfig& cfg = {});

/// Convenience: maximize one of the paper's metrics (IPCs derived from the
/// allocation via Eq. 1).
std::vector<double> optimize_metric(Metric m, std::span<const AppParams> apps,
                                    double b,
                                    const OptimizerConfig& cfg = {});

}  // namespace bwpart::core
