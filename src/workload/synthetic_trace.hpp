// Synthetic trace generators.
//
// SyntheticTraceGenerator emits the *off-chip miss stream* of a benchmark
// directly (miss-stream mode): clustered misses with calibrated API,
// spatial locality and read/write mix. This is the mode used for the paper
// experiments, because it makes API exactly controllable — the quantity the
// paper's model treats as the application's invariant.
//
// AddressStreamGenerator emits raw load/store addresses with a tunable
// working set and is run through the modeled L1/L2 hierarchy
// (address-stream mode); used by cache-focused tests and examples.
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "cpu/trace.hpp"
#include "workload/spec_table.hpp"

namespace bwpart::workload {

class SyntheticTraceGenerator final : public cpu::TraceSource {
 public:
  struct Params {
    double api = 0.01;             ///< off-chip accesses per instruction
    double mean_cluster = 2.0;     ///< mean misses per burst (>= 1)
    double write_fraction = 0.15;  ///< fraction of accesses that are writes
    /// Fraction of reads that are data-dependent on the previous load
    /// (pointer chasing); throttles effective memory-level parallelism.
    double dependent_fraction = 0.0;
    std::uint64_t seq_run_lines = 8;  ///< lines touched before a jump
    std::uint64_t intra_cluster_gap = 2;  ///< instrs between clustered misses
    Addr region_base = 0;          ///< start of this app's address region
    std::uint64_t footprint_lines = 1ull << 22;  ///< region size in lines
    std::uint32_t line_bytes = 64;
  };

  SyntheticTraceGenerator(const Params& params, std::uint64_t seed);

  /// Convenience: generator for one Table III benchmark, placed in a
  /// disjoint per-application address region so distinct apps never alias
  /// the same lines (they still contend for ranks and banks via the
  /// low-order interleaving bits).
  static SyntheticTraceGenerator from_benchmark(const BenchmarkSpec& spec,
                                                AppId app, std::uint64_t seed);

  cpu::TraceOp next() override;

  const Params& params() const { return params_; }

  /// Piecewise phase change (churn engine): swaps the demand-shaping knobs
  /// (api, mean_cluster, write_fraction, dependent_fraction, seq_run_lines,
  /// intra_cluster_gap) mid-stream while the RNG stream and the locality
  /// walk continue unbroken — the address region (region_base,
  /// footprint_lines, line_bytes) is an identity, not a phase, and must not
  /// change. An in-progress burst finishes under the old knobs; the next
  /// cluster is drawn under the new ones.
  void set_phase(const Params& next);

  /// Snapshot hooks: RNG stream, the burst/locality walk state, and the
  /// phase-changeable knobs (churn schedules mutate them mid-run), so a
  /// restored generator emits the identical remaining op sequence.
  void save_state(snap::Writer& w) const;
  void restore_state(snap::Reader& r);

 private:
  Addr next_address();

  Params params_;
  Rng rng_;
  std::uint64_t cluster_remaining_ = 0;
  std::uint64_t long_gap_ = 0;
  std::uint64_t seq_remaining_ = 0;
  std::uint64_t current_line_ = 0;
};

class AddressStreamGenerator final : public cpu::TraceSource {
 public:
  struct Params {
    double mem_fraction = 0.3;  ///< fraction of instructions that access memory
    double write_fraction = 0.3;
    std::uint64_t footprint_bytes = 1ull << 20;  ///< working-set size
    double sequential_prob = 0.7;  ///< chance the next access is +1 line
    Addr region_base = 0;
    std::uint32_t line_bytes = 64;
  };

  AddressStreamGenerator(const Params& params, std::uint64_t seed);

  cpu::TraceOp next() override;

 private:
  Params params_;
  Rng rng_;
  std::uint64_t lines_;
  std::uint64_t current_line_ = 0;
};

}  // namespace bwpart::workload
