// CmpSystem: N cores, each running one synthetic benchmark, sharing one
// memory controller and DRAM — the paper's Table II machine in simulation
// form.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "common/types.hpp"
#include "common/units.hpp"
#include "core/app_params.hpp"
#include "core/partition.hpp"
#include "cpu/core.hpp"
#include "dram/config.hpp"
#include "mem/controller.hpp"
#include "profile/alone_profiler.hpp"
#include "profile/interference.hpp"
#include "workload/spec_table.hpp"
#include "workload/synthetic_trace.hpp"

namespace bwpart::harness {

struct SystemConfig {
  Frequency cpu_clock = Frequency::from_ghz(5.0);
  dram::DramConfig dram = dram::DramConfig::ddr2_400();
  cpu::CoreConfig core{};  ///< template; nonmem_ipc comes from the benchmark
  std::size_t queue_capacity_per_app = 32;
  /// Shared-queue capacity used in No_partitioning (FCFS) mode, where one
  /// transaction queue is contended by every application.
  std::size_t queue_capacity_shared = 64;
  /// Row-hit bypass window for the share-based scheduler (0 = strict tag
  /// order); see StartTimeFairScheduler.
  double dstf_row_hit_window = 0.0;

  /// Peak off-chip bandwidth expressed in the model's APC unit.
  double peak_apc() const {
    const BandwidthContext ctx{cpu_clock, 64};
    return ctx.gbps_to_apc(dram.peak_gbps());
  }
};

/// Builds the scheduler enforcing `scheme`. Share-based schemes need the
/// application parameters (and the priority schemes additionally use them
/// for their ranks); No_partitioning ignores them.
std::unique_ptr<mem::Scheduler> make_scheduler(
    core::Scheme scheme, std::size_t num_apps,
    std::span<const core::AppParams> params, double row_hit_window);

/// Applies `scheme`'s shares/ranks to an existing scheduler instance (for
/// periodic re-profiling updates).
void apply_scheme(mem::Scheduler& sched, core::Scheme scheme,
                  std::span<const core::AppParams> params);

class CmpSystem {
 public:
  CmpSystem(const SystemConfig& cfg,
            std::span<const workload::BenchmarkSpec> apps, std::uint64_t seed);

  /// Runs for `cycles` CPU cycles.
  void run(Cycle cycles);

  Cycle now() const { return now_; }
  std::uint32_t num_apps() const {
    return static_cast<std::uint32_t>(cores_.size());
  }

  cpu::OoOCore& core(AppId app) { return *cores_[app]; }
  const cpu::OoOCore& core(AppId app) const { return *cores_[app]; }
  mem::MemoryController& controller() { return *controller_; }
  const mem::MemoryController& controller() const { return *controller_; }
  profile::InterferenceCounters& interference() { return interference_; }

  const SystemConfig& config() const { return cfg_; }
  const workload::BenchmarkSpec& benchmark(AppId app) const {
    return apps_[app];
  }

  /// Zeroes all measurement counters (cores, controller, DRAM stats,
  /// interference) at a phase boundary; microarchitectural state persists.
  void reset_measurement();

  /// Per-app cumulative profiler counters (accesses, instructions,
  /// interference) since the last reset_measurement().
  std::vector<profile::AppCounters> profiler_counters() const;

  /// Measured per-app IPC / APC over the window since reset_measurement().
  std::vector<double> measured_ipc() const;
  std::vector<double> measured_apc() const;
  /// Total utilized bandwidth in APC units over the window (the model's B).
  double measured_total_apc() const;

  /// Eq. 2 conservation audit (compiled in under BWPART_CHECK): per-app APC
  /// must sum to B, and the controller's per-app served counters must agree
  /// with the DRAM engine's independently maintained column-access counter
  /// up to the in-flight slack. Violations go through check::report.
  void check_conservation(const char* where) const;

 private:
  SystemConfig cfg_;
  std::vector<workload::BenchmarkSpec> apps_;
  std::vector<std::unique_ptr<workload::SyntheticTraceGenerator>> traces_;
  std::unique_ptr<mem::MemoryController> controller_;
  std::vector<std::unique_ptr<cpu::OoOCore>> cores_;
  profile::InterferenceCounters interference_;
  Cycle now_ = 0;
  Cycle window_start_ = 0;
};

}  // namespace bwpart::harness
