#include "workload/trace_io.hpp"

#include <array>
#include <cstring>

#include "common/assert.hpp"

namespace bwpart::workload {

namespace {

constexpr char kMagic[4] = {'B', 'W', 'P', 'T'};

struct PackedRecord {
  std::uint64_t gap = 0;
  std::uint64_t addr = 0;
  std::uint8_t type = 0;
  std::uint8_t dependent = 0;
  std::uint16_t pad = 0;
};
static_assert(sizeof(PackedRecord) == 24, "record layout");

}  // namespace

TraceWriter::TraceWriter(const std::string& path)
    : out_(path, std::ios::binary | std::ios::trunc) {
  BWPART_ASSERT(out_.good(), "cannot open trace file for writing");
  // Placeholder header; patched by close().
  out_.write(kMagic, 4);
  const std::uint32_t version = kTraceFormatVersion;
  out_.write(reinterpret_cast<const char*>(&version), sizeof version);
  const std::uint64_t zero = 0;
  out_.write(reinterpret_cast<const char*>(&zero), sizeof zero);
}

TraceWriter::~TraceWriter() { close(); }

void TraceWriter::write(const cpu::TraceOp& op) {
  BWPART_ASSERT(!closed_, "write after close");
  PackedRecord rec;
  rec.gap = op.gap_nonmem;
  rec.addr = op.addr;
  rec.type = op.type == AccessType::Write ? 1 : 0;
  rec.dependent = op.dependent ? 1 : 0;
  out_.write(reinterpret_cast<const char*>(&rec), sizeof rec);
  BWPART_ASSERT(out_.good(), "trace write failed");
  ++count_;
}

void TraceWriter::close() {
  if (closed_) return;
  closed_ = true;
  out_.seekp(8);
  out_.write(reinterpret_cast<const char*>(&count_), sizeof count_);
  out_.close();
}

FileTraceSource::FileTraceSource(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  BWPART_ASSERT(in.good(), "cannot open trace file for reading");
  char magic[4];
  in.read(magic, 4);
  BWPART_ASSERT(std::memcmp(magic, kMagic, 4) == 0, "bad trace magic");
  std::uint32_t version = 0;
  in.read(reinterpret_cast<char*>(&version), sizeof version);
  BWPART_ASSERT(version == kTraceFormatVersion, "unsupported trace version");
  std::uint64_t count = 0;
  in.read(reinterpret_cast<char*>(&count), sizeof count);
  BWPART_ASSERT(count > 0, "empty trace");
  ops_.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    PackedRecord rec;
    in.read(reinterpret_cast<char*>(&rec), sizeof rec);
    BWPART_ASSERT(in.good(), "truncated trace file");
    cpu::TraceOp op;
    op.gap_nonmem = rec.gap;
    op.addr = rec.addr;
    op.type = rec.type != 0 ? AccessType::Write : AccessType::Read;
    op.dependent = rec.dependent != 0;
    ops_.push_back(op);
  }
}

cpu::TraceOp FileTraceSource::next() {
  const cpu::TraceOp op = ops_[pos_];
  pos_ = (pos_ + 1) % ops_.size();
  return op;
}

void record_trace(cpu::TraceSource& source, const std::string& path,
                  std::uint64_t n_ops) {
  BWPART_ASSERT(n_ops > 0, "empty recording");
  TraceWriter writer(path);
  for (std::uint64_t i = 0; i < n_ops; ++i) writer.write(source.next());
  writer.close();
}

}  // namespace bwpart::workload
