#include "dram/bank.hpp"

#include <gtest/gtest.h>

#include "common/snapshot_io.hpp"
#include "dram/config.hpp"
#include "dram/timing_table.hpp"

namespace bwpart::dram {
namespace {

CmdTimings ticks() { return CmdTimings::build(DramConfig::ddr2_400().ticks()); }
// DDR2-400: rp=3 rcd=3 cl=3 cwl=2 ras=8 wr=3 rtp=2 ccd=2 burst=4.

TEST(BankArray, StartsClosedAndActivatable) {
  BankArray b(1);
  EXPECT_FALSE(b.row_open(0));
  EXPECT_TRUE(b.can_activate(0, 0));
  EXPECT_FALSE(b.can_read(0, 0));
  EXPECT_FALSE(b.can_write(0, 0));
  EXPECT_FALSE(b.can_precharge(0, 0));
}

TEST(BankArray, ActivateOpensRowAfterTrcd) {
  BankArray b(1);
  const CmdTimings t = ticks();
  b.activate(0, 10, 42, t);
  EXPECT_TRUE(b.row_open(0));
  EXPECT_EQ(b.open_row(0), 42u);
  EXPECT_FALSE(b.can_read(0, 10 + t.act_to_col - 1));
  EXPECT_TRUE(b.can_read(0, 10 + t.act_to_col));
  EXPECT_TRUE(b.can_write(0, 10 + t.act_to_col));
}

TEST(BankArray, PrechargeRespectsTras) {
  BankArray b(1);
  const CmdTimings t = ticks();
  b.activate(0, 0, 1, t);
  EXPECT_FALSE(b.can_precharge(0, t.act_to_pre - 1));
  EXPECT_TRUE(b.can_precharge(0, t.act_to_pre));
  b.precharge(0, t.act_to_pre, t);
  EXPECT_FALSE(b.row_open(0));
  EXPECT_FALSE(b.can_activate(0, t.act_to_pre + t.pre_to_act - 1));
  EXPECT_TRUE(b.can_activate(0, t.act_to_pre + t.pre_to_act));
}

TEST(BankArray, ReadExtendsPrechargeByTrtp) {
  BankArray b(1);
  const CmdTimings t = ticks();
  b.activate(0, 0, 1, t);
  const Tick rd = t.act_to_pre;  // read late, after tRAS satisfied
  b.read(0, rd, false, t);
  EXPECT_FALSE(b.can_precharge(0, rd + t.rd_to_pre - 1));
  EXPECT_TRUE(b.can_precharge(0, rd + t.rd_to_pre));
}

TEST(BankArray, ConsecutiveReadsSpacedByTccd) {
  BankArray b(1);
  const CmdTimings t = ticks();
  b.activate(0, 0, 1, t);
  b.read(0, t.act_to_col, false, t);
  EXPECT_FALSE(b.can_read(0, t.act_to_col + t.col_to_col - 1));
  EXPECT_TRUE(b.can_read(0, t.act_to_col + t.col_to_col));
}

TEST(BankArray, WriteRecoveryDelaysPrecharge) {
  BankArray b(1);
  const CmdTimings t = ticks();
  b.activate(0, 0, 1, t);
  const Tick wr = t.act_to_pre;  // past tRAS so only tWR matters
  b.write(0, wr, false, t);
  // wr_to_pre is the precomputed tCWL + burst + tWR composite.
  const Tick earliest = wr + t.wr_to_pre;
  EXPECT_FALSE(b.can_precharge(0, earliest - 1));
  EXPECT_TRUE(b.can_precharge(0, earliest));
}

TEST(BankArray, AutoPrechargeReadClosesRow) {
  BankArray b(1);
  const CmdTimings t = ticks();
  b.activate(0, 0, 7, t);
  b.read(0, t.act_to_col, true, t);
  EXPECT_FALSE(b.row_open(0));
  // The implicit precharge waits for max(tRAS from activate, read+tRTP).
  const Tick pre_start =
      std::max<Tick>(t.act_to_pre, t.act_to_col + t.rd_to_pre);
  EXPECT_FALSE(b.can_activate(0, pre_start + t.pre_to_act - 1));
  EXPECT_TRUE(b.can_activate(0, pre_start + t.pre_to_act));
}

TEST(BankArray, AutoPrechargeWriteClosesRow) {
  BankArray b(1);
  const CmdTimings t = ticks();
  b.activate(0, 0, 7, t);
  const Tick wr = t.act_to_col;
  b.write(0, wr, true, t);
  EXPECT_FALSE(b.row_open(0));
  const Tick pre_start = std::max<Tick>(t.act_to_pre, wr + t.wr_to_pre);
  EXPECT_TRUE(b.can_activate(0, pre_start + t.pre_to_act));
  EXPECT_FALSE(b.can_activate(0, pre_start + t.pre_to_act - 1));
}

TEST(BankArray, RefreshBlocksActivateForTrfc) {
  BankArray b(1);
  const CmdTimings t = ticks();
  b.refresh(0, 100, t);
  EXPECT_FALSE(b.can_activate(0, 100 + t.rfc - 1));
  EXPECT_TRUE(b.can_activate(0, 100 + t.rfc));
}

TEST(BankArray, ReopenDifferentRow) {
  BankArray b(1);
  const CmdTimings t = ticks();
  b.activate(0, 0, 1, t);
  b.precharge(0, t.act_to_pre, t);
  const Tick reopen = t.act_to_pre + t.pre_to_act;
  b.activate(0, reopen, 2, t);
  EXPECT_EQ(b.open_row(0), 2u);
}

TEST(BankArray, BanksAreIndependent) {
  BankArray b(4);
  const CmdTimings t = ticks();
  b.activate(2, 5, 9, t);
  EXPECT_TRUE(b.row_open(2));
  EXPECT_FALSE(b.row_open(0));
  EXPECT_FALSE(b.row_open(1));
  EXPECT_FALSE(b.row_open(3));
  EXPECT_TRUE(b.can_activate(3, 5));  // neighbours keep their own timing
  EXPECT_FALSE(b.can_activate(2, 5 + t.act_to_pre));
}

TEST(BankArray, SnapshotRoundTripPerBank) {
  BankArray b(2);
  const CmdTimings t = ticks();
  b.activate(0, 3, 11, t);
  b.read(0, 3 + t.act_to_col, false, t);
  b.refresh(1, 50, t);
  snap::Writer w;
  b.save_one(0, w);
  b.save_one(1, w);
  BankArray restored(2);
  snap::Reader r(w.bytes());
  restored.restore_one(0, r);
  restored.restore_one(1, r);
  EXPECT_TRUE(restored.row_open(0));
  EXPECT_EQ(restored.open_row(0), 11u);
  EXPECT_FALSE(restored.row_open(1));
  EXPECT_EQ(restored.next_read_tick(0), b.next_read_tick(0));
  EXPECT_EQ(restored.next_precharge_tick(0), b.next_precharge_tick(0));
  EXPECT_EQ(restored.next_activate_tick(1), b.next_activate_tick(1));
}

}  // namespace
}  // namespace bwpart::dram
