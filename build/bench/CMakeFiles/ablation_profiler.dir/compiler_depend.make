# Empty compiler generated dependencies file for ablation_profiler.
# This may be replaced when dependencies are built.
