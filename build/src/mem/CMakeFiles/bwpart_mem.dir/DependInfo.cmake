
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/controller.cpp" "src/mem/CMakeFiles/bwpart_mem.dir/controller.cpp.o" "gcc" "src/mem/CMakeFiles/bwpart_mem.dir/controller.cpp.o.d"
  "/root/repo/src/mem/scheduler.cpp" "src/mem/CMakeFiles/bwpart_mem.dir/scheduler.cpp.o" "gcc" "src/mem/CMakeFiles/bwpart_mem.dir/scheduler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dram/CMakeFiles/bwpart_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/bwpart_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
