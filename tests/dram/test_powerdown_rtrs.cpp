// Power-down modes, rank-to-rank bus gaps (tRTRS), the DDR3 preset, and
// the controller's bus-reservation anti-starvation rule.
#include <gtest/gtest.h>

#include <memory>

#include "dram/dram_system.hpp"
#include "dram/power.hpp"
#include "mem/controller.hpp"

namespace bwpart::dram {
namespace {

DramConfig pd_cfg() {
  DramConfig cfg = DramConfig::ddr2_400();
  cfg.enable_refresh = false;
  cfg.enable_powerdown = true;
  cfg.powerdown_idle_ns = 50.0;  // 10 bus ticks
  return cfg;
}

TEST(PowerDown, IdleRankEntersPowerDown) {
  DramSystem d(pd_cfg());
  for (Tick t = 0; t < 100; ++t) d.tick(t);
  EXPECT_TRUE(d.powered_down(0, 0));
  EXPECT_GT(d.stats().powerdown_rank_ticks, 0u);
}

TEST(PowerDown, PoweredDownRankRejectsCommands) {
  DramSystem d(pd_cfg());
  for (Tick t = 0; t < 100; ++t) d.tick(t);
  const Location loc{0, 0, 0, 1, 0};
  EXPECT_FALSE(d.can_issue({CommandType::Activate, loc, 0, 0}, 100));
}

TEST(PowerDown, WakeTakesTxp) {
  DramSystem d(pd_cfg());
  Tick now = 0;
  for (; now < 100; ++now) d.tick(now);
  ASSERT_TRUE(d.powered_down(0, 0));
  d.notify_rank_pending(0, 0, now);
  const Location loc{0, 0, 0, 1, 0};
  Tick woke_at = 0;
  for (; now < 200; ++now) {
    d.tick(now);
    d.notify_rank_pending(0, 0, now);
    if (!d.powered_down(0, 0)) {
      woke_at = now;
      break;
    }
  }
  ASSERT_GT(woke_at, 100u);
  // tXP = 10 ns = 2 ticks at 200 MHz.
  EXPECT_LE(woke_at, 100 + d.timings().xp + 2);
  EXPECT_TRUE(d.can_issue({CommandType::Activate, loc, 0, 0}, woke_at));
}

TEST(PowerDown, ActivityPreventsEntry) {
  DramSystem d(pd_cfg());
  Tick now = 0;
  const Location loc{0, 0, 0, 1, 0};
  // Touch rank 0 every 5 ticks (threshold is 10): it must stay awake.
  std::uint64_t row = 0;
  for (; now < 300; ++now) {
    d.tick(now);
    Location l = loc;
    l.row = row;
    Command act{CommandType::Activate, l, 0, 0};
    if (d.can_issue(act, now)) {
      d.issue(act, now);
      Command rd{CommandType::ReadAp, l, 0, 0};
      for (++now; now < 300; ++now) {
        d.tick(now);
        if (d.can_issue(rd, now)) {
          d.issue(rd, now);
          break;
        }
      }
      ++row;
    }
    EXPECT_FALSE(d.powered_down(0, 0)) << "tick " << now;
  }
}

TEST(PowerDown, EnergyModelDiscountsPowerDownTicks) {
  DramStats active;
  active.ticks = 1'000'000;
  DramStats sleepy = active;
  // All four ranks asleep the whole window.
  sleepy.powerdown_rank_ticks = 4'000'000;
  const DramConfig cfg = DramConfig::ddr2_400();
  EnergyParams p;
  p.powerdown_fraction = 0.25;
  const double e_active = estimate_energy(active, cfg, p).background_nj;
  const double e_sleepy = estimate_energy(sleepy, cfg, p).background_nj;
  EXPECT_NEAR(e_sleepy, 0.25 * e_active, e_active * 1e-9);
}

TEST(Rtrs, RankSwitchPaysGap) {
  DramConfig cfg = DramConfig::ddr2_400();
  cfg.enable_refresh = false;
  cfg.t.trtrs = 5.0;  // 1 tick at 200 MHz
  DramSystem d(cfg);
  const TimingsTicks& t = d.timings();
  Tick now = 0;
  auto issue_when_ready = [&](const Command& cmd) {
    for (;; ++now) {
      d.tick(now);
      if (d.can_issue(cmd, now)) {
        d.issue(cmd, now);
        return now++;
      }
    }
  };
  const Location r0{0, 0, 0, 1, 0};
  const Location r1{0, 1, 0, 1, 0};
  issue_when_ready({CommandType::Activate, r0, 0, 0});
  issue_when_ready({CommandType::Activate, r1, 0, 1});
  const Tick rd0 = issue_when_ready({CommandType::ReadAp, r0, 0, 0});
  const Tick rd1 = issue_when_ready({CommandType::ReadAp, r1, 0, 1});
  // Cross-rank: burst spacing is burst + tRTRS instead of just burst.
  EXPECT_GE(rd1, rd0 + t.burst + t.rtrs);
}

TEST(Rtrs, SameRankNeedsNoGap) {
  DramConfig cfg = DramConfig::ddr2_400();
  cfg.enable_refresh = false;
  cfg.t.trtrs = 5.0;
  cfg.t.tccd = 5.0;  // 1 tick, so tCCD does not mask the comparison
  DramSystem d(cfg);
  const TimingsTicks& t = d.timings();
  Tick now = 0;
  auto issue_when_ready = [&](const Command& cmd) {
    for (;; ++now) {
      d.tick(now);
      if (d.can_issue(cmd, now)) {
        d.issue(cmd, now);
        return now++;
      }
    }
  };
  const Location b0{0, 0, 0, 1, 0};
  const Location b1{0, 0, 1, 1, 0};
  issue_when_ready({CommandType::Activate, b0, 0, 0});
  issue_when_ready({CommandType::Activate, b1, 0, 1});
  const Tick rd0 = issue_when_ready({CommandType::ReadAp, b0, 0, 0});
  const Tick rd1 = issue_when_ready({CommandType::ReadAp, b1, 0, 1});
  EXPECT_EQ(rd1, rd0 + t.burst);  // back-to-back bursts, no switch gap
}

TEST(Ddr3Preset, GeometryAndBandwidth) {
  const DramConfig c = DramConfig::ddr3_1066();
  EXPECT_NEAR(c.peak_gbps(), 8.528, 0.01);
  EXPECT_EQ(c.total_banks(), 16u);
  const TimingsTicks t = c.ticks();
  // 533 MHz -> 1.876 ns/tick; 13.1 ns -> 7 ticks.
  EXPECT_EQ(t.rp, 7u);
  EXPECT_EQ(t.cl, 7u);
  EXPECT_GT(t.rfc, t.rp);
}

TEST(BusReservation, BlockedTopPriorityRequestIsNotStarved) {
  // A strict-priority controller with tRTRS: the high-priority app on rank
  // 0 must not be starved by a low-priority same-rank stream that would
  // otherwise always win the bus by avoiding the switch gap.
  DramConfig cfg = DramConfig::ddr2_400();
  cfg.enable_refresh = false;
  cfg.t.trtrs = 5.0;
  auto sched = std::make_unique<mem::StrictPriorityScheduler>(2);
  const std::array<std::uint32_t, 2> ranks{1, 0};  // app 1 = top priority
  sched->set_priority_ranks(ranks);
  mem::MemoryController mc(cfg, Frequency::from_ghz(5.0), 2,
                           std::move(sched), 64,
                           MapScheme::ChanRowColBankRank, 128,
                           mem::AdmissionMode::PerApp);
  Cycle hi_latency = 0;
  mc.set_completion_callback([&](const mem::MemRequest& r, Cycle done) {
    if (r.app == 1) hi_latency = done - r.arrival_cpu;
  });
  // App 0 streams on rank 0 only (stride 4 lines keeps rank bits at 0).
  std::uint64_t line = 0;
  bool sent = false;
  for (Cycle t = 0; t < 60'000; ++t) {
    while (mc.can_accept(0)) {
      mc.enqueue(0, (line++) * 4 * 64, AccessType::Read, t);
    }
    if (t == 30'000 && !sent) {
      // High-priority request on rank 1.
      mc.enqueue(1, 64, AccessType::Read, t);
      sent = true;
    }
    mc.tick(t);
  }
  ASSERT_GT(hi_latency, 0u);
  EXPECT_LT(hi_latency, 1500u);  // a couple of service times, not a queue
}

}  // namespace
}  // namespace bwpart::dram
