file(REMOVE_RECURSE
  "CMakeFiles/test_workload.dir/workload/test_mixes.cpp.o"
  "CMakeFiles/test_workload.dir/workload/test_mixes.cpp.o.d"
  "CMakeFiles/test_workload.dir/workload/test_spec_table.cpp.o"
  "CMakeFiles/test_workload.dir/workload/test_spec_table.cpp.o.d"
  "CMakeFiles/test_workload.dir/workload/test_synthetic_trace.cpp.o"
  "CMakeFiles/test_workload.dir/workload/test_synthetic_trace.cpp.o.d"
  "CMakeFiles/test_workload.dir/workload/test_trace_io.cpp.o"
  "CMakeFiles/test_workload.dir/workload/test_trace_io.cpp.o.d"
  "test_workload"
  "test_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
