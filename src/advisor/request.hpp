// The advisor's line-delimited request format.
//
// One request per line, whitespace-separated fields:
//
//   <id> <objective> b=<bandwidth> <app>=<apc>,<api>[,<weight>[,<target>]] ...
//        [be=<scheme>] [mix=<name>]
//
//   id         client-chosen token echoed in the response (<= 64 chars,
//              printable, no whitespace)
//   objective  wsp  — weighted speedup  (knapsack, Section III-D)
//              fair — fairness          (proportional water-fill, III-C)
//              qos  — QoS guarantees    (Eq. 11, Section III-G)
//   b=         total utilized bandwidth B in APC units
//   <app>=     per-application profile vector: APC_alone, API, an optional
//              importance weight (default 1), and — qos objective only — an
//              optional IPC target making this a guaranteed app. App names
//              must be unique within a request; "b", "be" and "mix" are
//              reserved.
//   be=        best-effort scheme for the qos objective (paper scheme
//              names; default Proportional)
//   mix=       audit tag naming a Table IV / Fig. 3 mix; sampled audit mode
//              forks that mix's simulator measure phase and scores the
//              model's IPC predictions against measurement
//
// Blank lines and lines starting with '#' are skipped by the service.
// Every malformed line yields a line-numbered error response; a line is
// never silently dropped (tests/advisor/test_parser_property).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>

#include "common/arena.hpp"
#include "core/app_params.hpp"
#include "core/partition.hpp"
#include "core/qos.hpp"

namespace bwpart::advisor {

/// Validation bounds. Out-of-range values are rejected at parse time so the
/// solvers only ever see finite, positive, sane magnitudes.
inline constexpr std::size_t kMaxApps = 64;
inline constexpr std::size_t kMaxIdChars = 64;
inline constexpr std::size_t kMaxLineBytes = std::size_t{1} << 16;
inline constexpr double kMaxBandwidth = 1e6;
inline constexpr double kMaxApc = 100.0;
inline constexpr double kMaxApi = 100.0;
inline constexpr double kMaxWeight = 1e6;
inline constexpr double kMaxIpcTarget = 1e3;

enum class Objective : std::uint8_t { WeightedSpeedup, Fairness, Qos };

inline constexpr Objective kAllObjectives[] = {
    Objective::WeightedSpeedup, Objective::Fairness, Objective::Qos};

std::string_view to_string(Objective o);

/// One parsed request. All spans/views point into the Arena the parser was
/// given (plus, for `mix`/`id`, arena copies of the input), so a Request
/// stays valid until the arena is reset.
struct Request {
  std::string_view id;
  Objective objective = Objective::WeightedSpeedup;
  double bandwidth = 0.0;
  std::span<const core::AppParams> apps;
  std::span<const double> weights;             ///< same arity as apps
  std::span<const std::string_view> app_names; ///< same arity as apps
  std::span<const core::QosRequirement> qos;   ///< qos objective only
  core::Scheme best_effort = core::Scheme::Proportional;
  std::string_view mix;     ///< empty when the request is not audit-tagged
  std::uint64_t line = 0;   ///< 1-based input line number
  bool unit_weights = true; ///< every weight is exactly 1.0
};

/// Parses one line. Returns true and fills `out` (arena-backed), or returns
/// false and sets `error` to a message prefixed "line <line_no>: ".
/// Malformed input — truncated fields, non-numeric/NaN/Inf values,
/// out-of-range magnitudes, duplicate app names, unknown objectives or
/// schemes — is always a clean error, never UB or a crash.
bool parse_request_line(std::string_view line, std::uint64_t line_no,
                        Arena& arena, Request& out, std::string& error);

}  // namespace bwpart::advisor
