#include "obs/hub.hpp"

namespace bwpart::obs {

void Hub::write_metrics_json(std::ostream& os) const {
  os << "{\"schema\":1,\"obs_compiled_in\":" << (kEnabled ? "true" : "false")
     << ",\"metrics\":";
  registry_.write_json(os);
  os << ",\"epochs\":";
  series_.write_json(os);
  os << "}\n";
}

}  // namespace bwpart::obs
