// The observability hub: one owner-supplied object aggregating the metrics
// registry, the epoch time-series and the Chrome-trace emitter, plus the
// runtime off-switch.
//
// Two gates keep the simulator's hot paths clean:
//   * compile time — the BWPART_OBS CMake option removes every
//     instrumentation call site via `if constexpr (obs::kEnabled)`
//     (obs::kEnabled in metrics.hpp);
//   * run time — components hold a Hub* that is nullptr until attached, and
//     a disabled hub (set_enabled(false)) is treated exactly like an absent
//     one.
// Either way the simulation's results are bit-identical with observability
// on, off or compiled out: instrumentation only ever *reads* simulator
// state (the zero-overhead differential test enforces this).
#pragma once

#include <ostream>

#include "common/types.hpp"
#include "obs/metrics.hpp"
#include "obs/series.hpp"
#include "obs/trace.hpp"

namespace bwpart::obs {

class Hub {
 public:
  explicit Hub(std::size_t trace_capacity = std::size_t{1} << 16)
      : trace_(trace_capacity) {}

  Registry& metrics() { return registry_; }
  const Registry& metrics() const { return registry_; }
  TraceEmitter& trace() { return trace_; }
  const TraceEmitter& trace() const { return trace_; }
  EpochSeries& series() { return series_; }
  const EpochSeries& series() const { return series_; }

  /// Runtime off-switch: a disabled hub records nothing and (because every
  /// producer checks active()) costs one predictable branch per cold-path
  /// hook.
  void set_enabled(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }
  bool active() const { return kEnabled && enabled_; }

  /// Epoch length for the time-series sampler; 0 disables epoch sampling
  /// (the harness then never chunks its run loop).
  void set_epoch_cycles(Cycle epoch) { epoch_cycles_ = epoch; }
  Cycle epoch_cycles() const { return epoch_cycles_; }

  /// Combined metrics document: {"schema": 1, "metrics": {registry},
  /// "epochs": [series rows]}.
  void write_metrics_json(std::ostream& os) const;

 private:
  bool enabled_ = true;
  Cycle epoch_cycles_ = 0;
  Registry registry_;
  TraceEmitter trace_;
  EpochSeries series_;
};

}  // namespace bwpart::obs
