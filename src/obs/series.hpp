// Epoch time-series: phase-resolved samples of the quantities the paper's
// model reasons about. Every N cycles (SystemConfig-independent; the hub
// carries the epoch length) the harness appends one row with per-app
// APC/API/IPC over the epoch, per-channel bus utilization, queue depths and
// the DSTF virtual-time lag — the telemetry needed to attribute bandwidth
// to applications *over time* instead of only end-of-run (Eq. 1-2 resolved
// per phase).
//
// Rows are pure derived data: the sampler only reads counters the simulator
// already maintains, so sampling can never perturb a result.
#pragma once

#include <cstddef>
#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace bwpart::obs {

/// One application's activity over one epoch.
struct AppEpochSample {
  double apc = 0.0;  ///< served accesses / epoch cycles (Eq. 2 occupancy)
  double api = 0.0;  ///< served accesses / retired instructions
  double ipc = 0.0;  ///< retired instructions / epoch cycles
  std::uint64_t served = 0;        ///< accesses served this epoch
  std::uint64_t instructions = 0;  ///< instructions retired this epoch
  std::size_t queue_depth = 0;     ///< pending requests at the sample point
  std::uint64_t window_occupancy = 0;  ///< ROB entries at the sample point
  std::uint32_t loads_inflight = 0;    ///< off-chip MLP at the sample point
  bool live = true;  ///< tenancy at the sample point (churn runs)
};

struct EpochRow {
  std::string track;  ///< run label, e.g. "measure:Equal"
  Cycle cycle = 0;    ///< absolute sample cycle (end of the epoch)
  Cycle span = 0;     ///< cycles covered (== epoch, shorter for a partial)
  std::vector<AppEpochSample> apps;
  /// Per-channel data-bus utilization over the epoch, each in [0, 1].
  std::vector<double> channel_util;
  /// Spread between the most-ahead and most-behind application virtual
  /// clock of a share-based (DSTF) scheduler; 0 for other policies.
  double dstf_lag = 0.0;
  std::size_t pending_total = 0;  ///< controller-wide queued + in-flight
  /// Churn stamps: events (arrivals/departures/phase changes) that landed
  /// inside this epoch, and the largest adaptation lag resolved during it
  /// (cycles from a churn event to the first epoch meeting the objective
  /// after the share re-solve); both 0 on churn-free epochs.
  std::uint32_t churn_events = 0;
  Cycle churn_lag = 0;
};

class EpochSeries {
 public:
  void add(EpochRow row) { rows_.push_back(std::move(row)); }
  const std::vector<EpochRow>& rows() const { return rows_; }
  std::size_t size() const { return rows_.size(); }
  void clear() { rows_.clear(); }

  /// JSON array of row objects.
  void write_json(std::ostream& os) const;
  /// JSONL: one row object per line (streaming-friendly).
  void write_jsonl(std::ostream& os) const;

 private:
  void write_row(std::ostream& os, const EpochRow& row) const;

  std::vector<EpochRow> rows_;
};

}  // namespace bwpart::obs
