#include "advisor/replay.hpp"

#include <cstdint>
#include <cstdio>
#include <ostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "advisor/solver.hpp"
#include "common/arena.hpp"
#include "common/check.hpp"

namespace bwpart::advisor {

namespace {

using harness::ChurnEvent;
using harness::ChurnKind;
using harness::ChurnSchedule;

/// Minimal JSON string escaping for the echoed request id (the parser
/// guarantees printable, whitespace-free characters, but quotes and
/// backslashes are printable).
std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

/// One re-solve over the live subset of the superset request, scattered
/// back to superset arity. Mirrors the churn engine's resolve_shares:
/// requirements are filtered to live apps and remapped to live-subset
/// positions; dormant apps hold exactly zero share.
void solve_step(Solver& solver, const Request& base,
                const std::vector<std::uint8_t>& live,
                const std::vector<double>& api_override, Arena& arena,
                std::vector<double>& shares, Answer& answer) {
  std::vector<core::AppParams> apps;
  std::vector<double> weights;
  std::vector<std::string_view> names;
  std::vector<core::QosRequirement> qos;
  std::vector<std::size_t> origin;
  for (std::size_t i = 0; i < base.apps.size(); ++i) {
    if (live[i] == 0) continue;
    core::AppParams p = base.apps[i];
    if (api_override[i] > 0.0) p.api = api_override[i];
    origin.push_back(i);
    apps.push_back(p);
    weights.push_back(base.weights[i]);
    names.push_back(base.app_names[i]);
  }
  for (const core::QosRequirement& req : base.qos) {
    if (live[req.app_index] == 0) continue;
    core::QosRequirement remapped = req;
    for (std::size_t sub = 0; sub < origin.size(); ++sub) {
      if (origin[sub] == req.app_index) {
        remapped.app_index = static_cast<decltype(remapped.app_index)>(sub);
      }
    }
    qos.push_back(remapped);
  }

  Request sub = base;
  sub.apps = apps;
  sub.weights = weights;
  sub.app_names = names;
  sub.qos = qos;

  arena.reset();
  solver.solve(sub, arena, answer);

  shares.assign(base.apps.size(), 0.0);
  for (std::size_t sub_i = 0; sub_i < origin.size(); ++sub_i) {
    shares[origin[sub_i]] = answer.shares[sub_i];
  }
  BWPART_CHECK_RUN(check::share_vector_live(shares, live, "advisor replay"));
}

void write_step(std::ostream& out, const Request& base, std::uint64_t step,
                Cycle cycle, std::span<const ChurnEvent> events,
                const std::vector<std::uint8_t>& live,
                const std::vector<double>& shares, const Answer& answer) {
  out << "{\"id\":\"" << escape(base.id) << "\",\"step\":" << step
      << ",\"cycle\":" << cycle << ",\"events\":[";
  for (std::size_t i = 0; i < events.size(); ++i) {
    out << (i == 0 ? "" : ",") << "{\"kind\":\""
        << harness::to_string(events[i].kind) << "\",\"app\":\""
        << escape(base.app_names[events[i].app]) << "\"}";
  }
  out << "],\"live\":[";
  for (std::size_t i = 0; i < live.size(); ++i) {
    out << (i == 0 ? "" : ",") << (live[i] != 0 ? "true" : "false");
  }
  out << "],\"feasible\":" << (answer.feasible ? "true" : "false")
      << ",\"value\":" << answer.value << ",\"shares\":[";
  char buf[32];
  for (std::size_t i = 0; i < shares.size(); ++i) {
    std::snprintf(buf, sizeof(buf), "%.17g", shares[i]);
    out << (i == 0 ? "" : ",") << buf;
  }
  out << "]}\n";
}

}  // namespace

ReplayStats replay_churn(const Request& base, const ChurnSchedule& schedule,
                         std::ostream& out) {
  schedule.validate(base.apps.size());

  std::vector<std::uint8_t> live(base.apps.size(), 1);
  for (AppId app : schedule.initially_dormant) live[app] = 0;
  std::vector<double> api_override(base.apps.size(), -1.0);

  Solver solver;
  Arena arena;
  Answer answer;
  std::vector<double> shares;
  ReplayStats stats;

  // Step 0: the initial install over the post-dormancy live set.
  solve_step(solver, base, live, api_override, arena, shares, answer);
  write_step(out, base, stats.steps, 0, {}, live, shares, answer);
  ++stats.steps;
  ++stats.resolves;
  if (!answer.feasible) ++stats.infeasible;

  // One re-solve per churn instant: events at the same cycle coalesce into
  // a single step, mirroring the engine's re-solve batching.
  std::size_t i = 0;
  while (i < schedule.events.size()) {
    std::size_t j = i;
    while (j < schedule.events.size() &&
           schedule.events[j].at == schedule.events[i].at) {
      const ChurnEvent& ev = schedule.events[j];
      switch (ev.kind) {
        case ChurnKind::kArrive:
          live[ev.app] = 1;
          break;
        case ChurnKind::kDepart:
          live[ev.app] = 0;
          break;
        case ChurnKind::kPhase:
          if (ev.knobs.api > 0.0) api_override[ev.app] = ev.knobs.api;
          break;
      }
      ++j;
    }
    solve_step(solver, base, live, api_override, arena, shares, answer);
    write_step(out, base, stats.steps, schedule.events[i].at,
               std::span<const ChurnEvent>(schedule.events.data() + i, j - i),
               live, shares, answer);
    ++stats.steps;
    ++stats.resolves;
    if (!answer.feasible) ++stats.infeasible;
    i = j;
  }
  return stats;
}

}  // namespace bwpart::advisor
