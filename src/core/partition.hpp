// The bandwidth partitioning schemes of Section V-D and the machinery to
// turn each into (a) a share vector beta for the enforcement scheduler and
// (b) an analytic per-application bandwidth allocation APC_shared.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/app_params.hpp"
#include "core/workspace.hpp"

namespace bwpart::core {

enum class Scheme : std::uint8_t {
  NoPartitioning,  ///< FCFS, bandwidth falls where demand pushes it
  Equal,           ///< beta_i = 1/N (Nesbit et al.)
  Proportional,    ///< beta_i ~ APC_alone_i — optimal for fairness (Sec III-C)
  SquareRoot,      ///< beta_i ~ sqrt(APC_alone_i) — optimal for Hsp (Sec III-B)
  TwoThirdsPower,  ///< beta_i ~ APC_alone_i^(2/3) (Liu et al., HPCA'10)
  PriorityApc,     ///< knapsack, low APC_alone first — optimal Wsp (Sec III-D)
  PriorityApi,     ///< knapsack, low API first — optimal IPCsum (Sec III-E)
};

inline constexpr Scheme kAllSchemes[] = {
    Scheme::NoPartitioning, Scheme::Equal,       Scheme::Proportional,
    Scheme::SquareRoot,     Scheme::TwoThirdsPower, Scheme::PriorityApc,
    Scheme::PriorityApi};

std::string to_string(Scheme s);

/// True for the strict-priority schemes, which are enforced by request
/// priority rather than by a share vector.
constexpr bool is_priority_scheme(Scheme s) {
  return s == Scheme::PriorityApc || s == Scheme::PriorityApi;
}

/// Weight-proportional share vectors for the share-based schemes
/// (Equal/Proportional/SquareRoot/TwoThirdsPower). `b` — the total utilized
/// bandwidth in APC — is only needed by the priority schemes, for which the
/// returned shares are the analytic knapsack allocation divided by `b`.
/// For NoPartitioning, returns the demand-proportional approximation (the
/// scheduler ignores shares in that mode anyway).
std::vector<double> compute_shares(Scheme s, std::span<const AppParams> apps,
                                   double b);

/// Priority ranks (0 = served first) for the priority schemes:
/// PriorityApc ranks by ascending APC_alone, PriorityApi by ascending API.
std::vector<std::uint32_t> priority_ranks(Scheme s,
                                          std::span<const AppParams> apps);

/// Greedy fractional-knapsack allocation (Sections III-D/E): hand each
/// application, in the given rank order, min(cap_i, remaining budget).
/// `caps[i]` is the most bandwidth app i can consume (its APC_alone).
/// Returns the APC allocation; allocations sum to min(b, sum(caps)).
std::vector<double> knapsack_allocate(std::span<const double> caps,
                                      std::span<const std::uint32_t> ranks,
                                      double b);

/// Analytic bandwidth allocation of a scheme: APC_shared per app such that
/// the vector sums to min(B, sum APC_alone). Share-based schemes are
/// water-filled — an app never receives more than its APC_alone (it cannot
/// generate more traffic than it does standalone); surplus is redistributed
/// among the remaining apps in proportion to their weights.
std::vector<double> analytic_allocation(Scheme s,
                                        std::span<const AppParams> apps,
                                        double b);

/// Water-fill helper: distribute `b` in proportion to `weights` with
/// per-app caps, redistributing any capped surplus. Exposed for tests.
std::vector<double> waterfill(std::span<const double> weights,
                              std::span<const double> caps, double b);

// ---------------------------------------------------------------------------
// Allocation-free entry points. Each writes into a caller-provided span and
// borrows scratch from a SolveWorkspace (see workspace.hpp); results are
// bit-identical to the vector-returning forms above, which now delegate
// here (tests/core/test_solver_span_regression pins the equivalence against
// a frozen copy of the pre-refactor implementations).

/// The weight one application contributes under a share-based scheme
/// (Equal 1, Proportional APC_alone, Square_root sqrt, 2/3-power pow).
/// Aborts for the priority schemes, which have no weight vector.
double scheme_weight(Scheme s, const AppParams& a);

/// Ranks (0 = served first) from a sort-key vector: ascending by default,
/// descending for knapsack value densities. `order` is scratch of the same
/// size. Stable: equal keys keep their input order.
void ranks_by_key_into(std::span<const double> keys,
                       std::span<std::uint32_t> ranks,
                       std::span<std::uint32_t> order,
                       bool descending = false);

/// knapsack_allocate into `out`; `order` is scratch of the same size.
void knapsack_allocate_into(std::span<const double> caps,
                            std::span<const std::uint32_t> ranks, double b,
                            std::span<double> out,
                            std::span<std::uint32_t> order);

/// waterfill into `out`; `capped` is scratch of the same size.
void waterfill_into(std::span<const double> weights,
                    std::span<const double> caps, double b,
                    std::span<double> out, std::span<unsigned char> capped);

/// compute_shares into `out`.
void compute_shares_into(Scheme s, std::span<const AppParams> apps, double b,
                         std::span<double> out, SolveWorkspace& ws);

/// analytic_allocation into `out`.
void analytic_allocation_into(Scheme s, std::span<const AppParams> apps,
                              double b, std::span<double> out,
                              SolveWorkspace& ws);

}  // namespace bwpart::core
