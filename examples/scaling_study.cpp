// Scaling study (paper Section VI-C / Fig. 4): scale the memory bus from
// 3.2 to 12.8 GB/s (latencies fixed in nanoseconds), the core count from 4
// to 16, and the workload by replication — then measure how much each
// optimal scheme gains over Equal partitioning.
//
//   ./examples/scaling_study [mix-name]
#include <cstdio>
#include <iostream>
#include <string>

#include "common/table.hpp"
#include "harness/experiment.hpp"
#include "workload/mixes.hpp"

int main(int argc, char** argv) {
  using namespace bwpart;

  const std::string mix_name = argc > 1 ? argv[1] : "hetero-6";
  const workload::MixSpec* mix = nullptr;
  for (const auto& m : workload::paper_mixes()) {
    if (m.name == mix_name) mix = &m;
  }
  if (mix == nullptr) {
    std::fprintf(stderr, "unknown mix '%s'\n", mix_name.c_str());
    return 1;
  }

  struct Point {
    dram::DramConfig dram;
    std::uint32_t copies;
    const char* label;
  };
  const Point points[] = {
      {dram::DramConfig::ddr2_400(), 1, "3.2 GB/s, 4 cores"},
      {dram::DramConfig::ddr2_800(), 2, "6.4 GB/s, 8 cores"},
      {dram::DramConfig::ddr2_1600(), 4, "12.8 GB/s, 16 cores"},
  };

  TextTable table({"configuration", "Hsp/Equal", "MinF/Equal", "Wsp/Equal",
                   "IPCsum/Equal"});
  for (const Point& pt : points) {
    harness::SystemConfig machine;
    machine.dram = pt.dram;
    harness::PhaseConfig phases;
    phases.warmup_cycles = 300'000;
    phases.profile_cycles = 1'500'000;
    phases.measure_cycles = 1'500'000;
    const auto apps = workload::resolve_mix(*mix, pt.copies);
    const harness::Experiment experiment(machine, apps, phases);
    const harness::RunResult eq = experiment.run(core::Scheme::Equal);
    // Each metric is evaluated under its own optimal scheme, normalized to
    // Equal (the Fig. 4 methodology).
    const double hsp = experiment.run(core::Scheme::SquareRoot).hsp / eq.hsp;
    const double minf = experiment.run(core::Scheme::Proportional)
                            .min_fairness / eq.min_fairness;
    const double wsp = experiment.run(core::Scheme::PriorityApc).wsp / eq.wsp;
    const double ipcsum =
        experiment.run(core::Scheme::PriorityApi).ipcsum / eq.ipcsum;
    table.add_row({pt.label, TextTable::num(hsp), TextTable::num(minf),
                   TextTable::num(wsp), TextTable::num(ipcsum)});
  }
  std::printf("Fig. 4-style scaling on %s:\n\n", mix->name.data());
  table.print(std::cout);
  std::printf(
      "\nExpected shape: improvements over Equal grow with bandwidth and "
      "core count\nbecause the workload becomes more heterogeneous "
      "(Section VI-C).\n");
  return 0;
}
