file(REMOVE_RECURSE
  "CMakeFiles/ablation_profiler.dir/ablation_profiler.cpp.o"
  "CMakeFiles/ablation_profiler.dir/ablation_profiler.cpp.o.d"
  "ablation_profiler"
  "ablation_profiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_profiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
