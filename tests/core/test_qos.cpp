#include "core/qos.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

namespace bwpart::core {
namespace {

// hmmer-like guaranteed app plus three best-effort apps.
std::vector<AppParams> workload() {
  return {{0.0094, 0.053},   // lbm
          {0.0066, 0.034},   // libquantum
          {0.0056, 0.031},   // omnetpp
          {0.0052, 0.0046}}; // hmmer (IPC_alone ~ 1.13)
}

TEST(Qos, ReservationMatchesSectionIIIG) {
  const auto apps = workload();
  const QosRequirement req{3, 0.6};
  const QosPlan plan =
      qos_allocate(apps, std::span(&req, 1), 0.0098, Scheme::SquareRoot);
  ASSERT_TRUE(plan.feasible);
  // B_QoS = IPC_target * API = 0.6 * 0.0046.
  EXPECT_NEAR(plan.b_qos, 0.6 * 0.0046, 1e-12);
  EXPECT_NEAR(plan.apc_shared[3], 0.6 * 0.0046, 1e-12);
  EXPECT_NEAR(plan.b_best_effort, 0.0098 - plan.b_qos, 1e-12);
}

TEST(Qos, BestEffortGetsTheRemainder) {
  const auto apps = workload();
  const QosRequirement req{3, 0.6};
  const QosPlan plan =
      qos_allocate(apps, std::span(&req, 1), 0.0098, Scheme::SquareRoot);
  ASSERT_TRUE(plan.feasible);
  const double be_total =
      plan.apc_shared[0] + plan.apc_shared[1] + plan.apc_shared[2];
  EXPECT_NEAR(be_total, plan.b_best_effort, 1e-9);
}

TEST(Qos, SharesSumToOne) {
  const auto apps = workload();
  const QosRequirement req{3, 0.6};
  for (Scheme be : {Scheme::SquareRoot, Scheme::Proportional,
                    Scheme::PriorityApc, Scheme::PriorityApi, Scheme::Equal}) {
    const QosPlan plan = qos_allocate(apps, std::span(&req, 1), 0.0098, be);
    ASSERT_TRUE(plan.feasible) << to_string(be);
    const double s =
        std::accumulate(plan.beta.begin(), plan.beta.end(), 0.0);
    EXPECT_NEAR(s, 1.0, 1e-9) << to_string(be);
  }
}

TEST(Qos, UnreachableTargetIsInfeasible) {
  const auto apps = workload();
  // hmmer's IPC_alone is ~1.13; demanding 2.0 exceeds what the app can do.
  const QosRequirement req{3, 2.0};
  const QosPlan plan =
      qos_allocate(apps, std::span(&req, 1), 0.0098, Scheme::SquareRoot);
  EXPECT_FALSE(plan.feasible);
}

TEST(Qos, OverCommittedBandwidthIsInfeasible) {
  const auto apps = workload();
  // Guarantee both lbm and libquantum nearly their standalone IPC: the
  // combined reservation exceeds the 0.0098 budget.
  const std::vector<QosRequirement> reqs{{0, 0.17}, {1, 0.19}};
  const QosPlan plan = qos_allocate(apps, reqs, 0.0098, Scheme::SquareRoot);
  // Reservations: 0.17*0.053 + 0.19*0.034 = 0.00901 + 0.00646 > 0.0098.
  EXPECT_FALSE(plan.feasible);
}

TEST(Qos, MultipleGuaranteesSupported) {
  const auto apps = workload();
  const std::vector<QosRequirement> reqs{{3, 0.5}, {2, 0.05}};
  const QosPlan plan = qos_allocate(apps, reqs, 0.0098, Scheme::PriorityApi);
  ASSERT_TRUE(plan.feasible);
  EXPECT_NEAR(plan.apc_shared[3], 0.5 * 0.0046, 1e-12);
  EXPECT_NEAR(plan.apc_shared[2], 0.05 * 0.031, 1e-12);
  EXPECT_NEAR(plan.b_qos, 0.5 * 0.0046 + 0.05 * 0.031, 1e-12);
}

TEST(Qos, PriorityBestEffortStarvesWithinBestEffortGroupOnly) {
  const auto apps = workload();
  const QosRequirement req{3, 0.6};
  const QosPlan plan =
      qos_allocate(apps, std::span(&req, 1), 0.0080, Scheme::PriorityApc);
  ASSERT_TRUE(plan.feasible);
  // Best-effort budget 0.0080 - 0.00276 = 0.00524 is below even omnetpp's
  // cap (0.0056): omnetpp (lowest APC in the BE group) takes it all and
  // both libquantum and lbm starve.
  EXPECT_NEAR(plan.apc_shared[2], 0.0080 - 0.6 * 0.0046, 1e-9);
  EXPECT_DOUBLE_EQ(plan.apc_shared[1], 0.0);
  EXPECT_DOUBLE_EQ(plan.apc_shared[0], 0.0);
  // The guaranteed app is untouched by the starvation.
  EXPECT_NEAR(plan.apc_shared[3], 0.6 * 0.0046, 1e-12);
}

TEST(Qos, ReservationsExactlyFillingBandwidthAreFeasible) {
  // Boundary of the infeasibility test: b_qos == b is still feasible; the
  // best-effort group simply gets nothing.
  const std::vector<AppParams> apps{{0.004, 0.01}, {0.002, 0.02}};
  const double reserve = 0.1 * 0.01;  // app 0's full request
  const QosRequirement req{0, 0.1};
  const QosPlan plan =
      qos_allocate(apps, std::span(&req, 1), reserve, Scheme::SquareRoot);
  ASSERT_TRUE(plan.feasible);
  EXPECT_DOUBLE_EQ(plan.b_best_effort, 0.0);
  EXPECT_NEAR(plan.apc_shared[0], reserve, 1e-12);
  EXPECT_DOUBLE_EQ(plan.apc_shared[1], 0.0);
  // ... and one epsilon beyond the budget flips to infeasible.
  const QosPlan over = qos_allocate(apps, std::span(&req, 1),
                                    reserve * (1.0 - 1e-9), Scheme::SquareRoot);
  EXPECT_FALSE(over.feasible);
}

TEST(Qos, ZeroApiAppReservesNothing) {
  // A compute-bound guaranteed app (API == 0) needs no bandwidth for any
  // IPC target: B_QoS = IPC_target * API = 0, so the whole budget stays
  // with the best-effort group.
  const std::vector<AppParams> apps{{0.004, 0.0}, {0.002, 0.02}};
  const QosRequirement req{0, 3.5};
  const QosPlan plan =
      qos_allocate(apps, std::span(&req, 1), 0.001, Scheme::Proportional);
  ASSERT_TRUE(plan.feasible);
  EXPECT_DOUBLE_EQ(plan.b_qos, 0.0);
  EXPECT_DOUBLE_EQ(plan.apc_shared[0], 0.0);
  EXPECT_NEAR(plan.b_best_effort, 0.001, 1e-15);
  EXPECT_NEAR(plan.apc_shared[1], 0.001, 1e-12);
}

TEST(Qos, SingleBestEffortAppTakesTheWholeRemainder) {
  const std::vector<AppParams> apps{{0.004, 0.01}, {0.006, 0.02}};
  const QosRequirement req{0, 0.2};  // reserves 0.002
  // Remainder 0.004 is below app 1's cap: it takes all of it.
  const QosPlan under =
      qos_allocate(apps, std::span(&req, 1), 0.006, Scheme::Equal);
  ASSERT_TRUE(under.feasible);
  EXPECT_NEAR(under.apc_shared[1], 0.004, 1e-12);
  // Remainder 0.008 exceeds the cap: the allocation saturates at APC_alone.
  const QosPlan over =
      qos_allocate(apps, std::span(&req, 1), 0.010, Scheme::Equal);
  ASSERT_TRUE(over.feasible);
  EXPECT_NEAR(over.apc_shared[1], 0.006, 1e-12);
}

TEST(Qos, AllAppsGuaranteedLeavesNoBestEffort) {
  const std::vector<AppParams> apps{{0.004, 0.01}, {0.002, 0.02}};
  const std::vector<QosRequirement> reqs{{0, 0.1}, {1, 0.05}};
  const QosPlan plan = qos_allocate(apps, reqs, 0.01, Scheme::Equal);
  ASSERT_TRUE(plan.feasible);
  EXPECT_NEAR(plan.apc_shared[0], 0.001, 1e-12);
  EXPECT_NEAR(plan.apc_shared[1], 0.001, 1e-12);
}

}  // namespace
}  // namespace bwpart::core
