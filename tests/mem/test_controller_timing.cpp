// Clock-domain behaviour of the controller: non-integer CPU:bus ratios
// (the Fig. 4 scaling points) and completion-cycle mapping.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "mem/controller.hpp"

namespace bwpart::mem {
namespace {

dram::DramConfig quiet(Frequency bus) {
  dram::DramConfig cfg = dram::DramConfig::ddr2_400();
  cfg.bus_clock = bus;
  cfg.enable_refresh = false;
  return cfg;
}

TEST(ControllerTiming, FractionalRatioCompletesRequests) {
  // 5 GHz : 800 MHz = 6.25 CPU cycles per bus tick.
  MemoryController mc(quiet(Frequency::from_mhz(800)),
                      Frequency::from_ghz(5.0), 1,
                      std::make_unique<FcfsScheduler>());
  std::vector<Cycle> done;
  mc.set_completion_callback(
      [&done](const MemRequest&, Cycle d) { done.push_back(d); });
  for (int i = 0; i < 10; ++i) {
    mc.enqueue(0, static_cast<Addr>(i) * 64, AccessType::Read, 0);
  }
  for (Cycle t = 0; t < 5000; ++t) mc.tick(t);
  ASSERT_EQ(done.size(), 10u);
  // Completion cycles are strictly increasing (bus serializes the data).
  for (std::size_t i = 1; i < done.size(); ++i) {
    EXPECT_GT(done[i], done[i - 1]);
  }
}

TEST(ControllerTiming, FasterBusMeansLowerLatency) {
  auto latency_at = [](Frequency bus) {
    MemoryController mc(quiet(bus), Frequency::from_ghz(5.0), 1,
                        std::make_unique<FcfsScheduler>());
    Cycle done_at = 0;
    mc.set_completion_callback(
        [&done_at](const MemRequest&, Cycle d) { done_at = d; });
    mc.enqueue(0, 0x1000, AccessType::Read, 0);
    for (Cycle t = 0; t < 5000 && done_at == 0; ++t) mc.tick(t);
    return done_at;
  };
  const Cycle slow = latency_at(Frequency::from_mhz(200));
  const Cycle fast = latency_at(Frequency::from_mhz(800));
  // Same nanosecond timings, but command/burst granularity shrinks.
  EXPECT_LT(fast, slow);
  EXPECT_GT(fast, slow / 8);
}

TEST(ControllerTiming, ThroughputScalesWithBusClock) {
  auto served_at = [](Frequency bus) {
    MemoryController mc(quiet(bus), Frequency::from_ghz(5.0), 1,
                        std::make_unique<FcfsScheduler>(), 64);
    mc.set_completion_callback([](const MemRequest&, Cycle) {});
    std::uint64_t line = 0;
    for (Cycle t = 0; t < 200'000; ++t) {
      while (mc.can_accept(0)) {
        mc.enqueue(0, (line++) * 64, AccessType::Read, t);
      }
      mc.tick(t);
    }
    return mc.app_stats(0).served();
  };
  const auto s200 = static_cast<double>(served_at(Frequency::from_mhz(200)));
  const auto s400 = static_cast<double>(served_at(Frequency::from_mhz(400)));
  EXPECT_NEAR(s400 / s200, 2.0, 0.1);
}

TEST(ControllerTiming, CompletionNeverBeforeArrival) {
  MemoryController mc(quiet(Frequency::from_mhz(533)),
                      Frequency::from_ghz(5.0), 1,
                      std::make_unique<FcfsScheduler>());
  bool checked = false;
  mc.set_completion_callback([&checked](const MemRequest& r, Cycle d) {
    EXPECT_GE(d, r.arrival_cpu);
    checked = true;
  });
  mc.enqueue(0, 0x40, AccessType::Read, 123);
  for (Cycle t = 123; t < 4000; ++t) mc.tick(t);
  EXPECT_TRUE(checked);
}

TEST(ControllerTiming, MeanLatencyReflectsQueueing) {
  auto latency_with_depth = [](int depth) {
    MemoryController mc(quiet(Frequency::from_mhz(200)),
                        Frequency::from_ghz(5.0), 1,
                        std::make_unique<FcfsScheduler>(), 64);
    mc.set_completion_callback([](const MemRequest&, Cycle) {});
    for (int i = 0; i < depth; ++i) {
      mc.enqueue(0, static_cast<Addr>(i) * 64, AccessType::Read, 0);
    }
    for (Cycle t = 0; t < 50'000; ++t) mc.tick(t);
    return mc.app_stats(0).mean_latency_cycles();
  };
  EXPECT_GT(latency_with_depth(32), 2.0 * latency_with_depth(2));
}

}  // namespace
}  // namespace bwpart::mem
