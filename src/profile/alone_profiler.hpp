// Online estimation of APC_alone (paper Eq. 12-13).
//
// For each application, three counters are maintained while it runs in the
// shared CMP: N_accesses (served reads+writes), T_cyc,shared (elapsed
// cycles) and T_cyc,interference (from InterferenceCounters). Then
//
//     T_cyc,alone = T_cyc,shared - T_cyc,interference       (Eq. 13)
//     APC_alone   = N_accesses / T_cyc,alone                (Eq. 12)
//
// API is measured directly (accesses / instructions) — it is invariant
// under partitioning so the shared-mode measurement is the standalone one.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "common/types.hpp"
#include "core/app_params.hpp"
#include "obs/hub.hpp"

namespace bwpart::profile {

/// Cumulative raw counters for one application at one instant.
struct AppCounters {
  std::uint64_t accesses = 0;      ///< served off-chip reads + writes
  std::uint64_t instructions = 0;  ///< retired instructions
  Cycle interference_cycles = 0;   ///< accumulated T_cyc,interference
};

/// Point-estimate from a counter delta over `shared_cycles` elapsed cycles.
core::AppParams estimate_alone(const AppCounters& delta, Cycle shared_cycles);

/// Periodic re-profiling (Section IV-C: "APC_alone is profiled periodically
/// (e.g., every 10 million cycles)"). Feed cumulative counters every cycle
/// or at any coarser cadence; when a period boundary is crossed the profiler
/// differentiates the counters, re-estimates every app and returns the new
/// parameter vector. Estimates are smoothed with an exponential moving
/// average so one noisy window does not swing the partitioning.
class RollingProfiler {
 public:
  RollingProfiler(std::uint32_t num_apps, Cycle period,
                  double smoothing = 0.5);

  /// Returns new estimates when `now` crosses a period boundary.
  std::optional<std::vector<core::AppParams>> update(
      Cycle now, std::span<const AppCounters> cumulative);

  Cycle period() const { return period_; }

  /// Attaches the observability hub: each re-profiling boundary then emits
  /// an instant trace event and refreshes per-app APC_alone/API estimate
  /// gauges. Telemetry only — never read back. Compiled out with
  /// BWPART_OBS=OFF.
  void set_observability(obs::Hub* hub);

 private:
  obs::Hub* obs_ = nullptr;
  Cycle period_;
  double smoothing_;
  Cycle next_boundary_;
  std::vector<AppCounters> last_;
  std::vector<core::AppParams> estimate_;
  bool has_estimate_ = false;
  Cycle last_cycle_ = 0;
};

}  // namespace bwpart::profile
