# Empty dependencies file for table4_workloads.
# This may be replaced when dependencies are built.
