file(REMOVE_RECURSE
  "CMakeFiles/bwpart_mem.dir/controller.cpp.o"
  "CMakeFiles/bwpart_mem.dir/controller.cpp.o.d"
  "CMakeFiles/bwpart_mem.dir/scheduler.cpp.o"
  "CMakeFiles/bwpart_mem.dir/scheduler.cpp.o.d"
  "libbwpart_mem.a"
  "libbwpart_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bwpart_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
