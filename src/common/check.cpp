#include "common/check.hpp"

#include <algorithm>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <numeric>

#include "common/assert.hpp"

namespace bwpart::check {

namespace {

void abort_handler(const Violation& v) {
  std::fprintf(stderr, "bwpart model invariant violated: %s\n  at %s:%d\n",
               v.what.c_str(), v.file, v.line);
  std::abort();
}

std::mutex g_mutex;
Handler g_handler = &abort_handler;
std::vector<Violation>* g_recording = nullptr;

void recording_handler(const Violation& v) {
  std::lock_guard<std::mutex> lock(g_mutex);
  BWPART_ASSERT(g_recording != nullptr, "recorder handler without recorder");
  g_recording->push_back(v);
}

}  // namespace

Handler install_handler(Handler h) {
  BWPART_ASSERT(h != nullptr, "null violation handler");
  std::lock_guard<std::mutex> lock(g_mutex);
  Handler prev = g_handler;
  g_handler = h;
  return prev;
}

void report(std::string what, const char* file, int line) {
  Violation v{std::move(what), file, line};
  Handler h;
  {
    std::lock_guard<std::mutex> lock(g_mutex);
    h = g_handler;
  }
  h(v);
}

namespace {
// Recorder storage lives outside the class so the handler (a plain function
// pointer) can reach it.
std::vector<Violation> g_recorded;
}  // namespace

Recorder::Recorder() {
  {
    std::lock_guard<std::mutex> lock(g_mutex);
    BWPART_ASSERT(g_recording == nullptr, "nested check::Recorder");
    g_recorded.clear();
    g_recording = &g_recorded;
  }
  previous_ = install_handler(&recording_handler);
}

Recorder::~Recorder() {
  install_handler(previous_);
  std::lock_guard<std::mutex> lock(g_mutex);
  g_recording = nullptr;
}

const std::vector<Violation>& Recorder::violations() const {
  return g_recorded;
}

bool Recorder::caught(std::string_view needle) const {
  return std::any_of(g_recorded.begin(), g_recorded.end(),
                     [&](const Violation& v) {
                       return v.what.find(needle) != std::string::npos;
                     });
}

void Recorder::clear() {
  std::lock_guard<std::mutex> lock(g_mutex);
  g_recorded.clear();
}

namespace {
#if defined(__GNUC__)
__attribute__((format(printf, 2, 3)))
#endif
std::string
fmt(const char* where, const char* format, ...) {
  char buf[256];
  va_list args;
  va_start(args, format);
  std::vsnprintf(buf, sizeof(buf), format, args);
  va_end(args);
  return std::string(where) + ": " + buf;
}
}  // namespace

void share_vector(std::span<const double> beta, const char* where) {
  double sum = 0.0;
  for (std::size_t i = 0; i < beta.size(); ++i) {
    if (beta[i] < 0.0 || !std::isfinite(beta[i])) {
      report(fmt(where, "share beta[%zu] = %g is negative or non-finite", i,
                 beta[i]),
             __FILE__, __LINE__);
    }
    sum += beta[i];
  }
  if (std::fabs(sum - 1.0) > kShareSumTol) {
    report(fmt(where, "share sum %.12g deviates from 1 by %.3g", sum,
               std::fabs(sum - 1.0)),
           __FILE__, __LINE__);
  }
}

void share_vector_live(std::span<const double> beta,
                       std::span<const std::uint8_t> live, const char* where) {
  BWPART_ASSERT(beta.size() == live.size(), "beta/live arity mismatch");
  double sum = 0.0;
  std::size_t num_live = 0;
  for (std::size_t i = 0; i < beta.size(); ++i) {
    if (!live[i]) {
      if (beta[i] != 0.0) {
        report(fmt(where, "dormant app %zu holds share %g (must be 0)", i,
                   beta[i]),
               __FILE__, __LINE__);
      }
      continue;
    }
    ++num_live;
    if (beta[i] < 0.0 || !std::isfinite(beta[i])) {
      report(fmt(where, "live share beta[%zu] = %g is negative or non-finite",
                 i, beta[i]),
             __FILE__, __LINE__);
    }
    sum += beta[i];
  }
  const double expect = num_live == 0 ? 0.0 : 1.0;
  if (std::fabs(sum - expect) > kShareSumTol) {
    report(fmt(where,
               "live share sum %.12g over %zu live apps deviates from %g "
               "by %.3g",
               sum, num_live, expect, std::fabs(sum - expect)),
           __FILE__, __LINE__);
  }
}

void allocation(std::span<const double> alloc, std::span<const double> caps,
                double b, double tol, const char* where) {
  BWPART_ASSERT(alloc.size() == caps.size(), "alloc/caps arity mismatch");
  double sum = 0.0;
  for (std::size_t i = 0; i < alloc.size(); ++i) {
    if (alloc[i] < -tol || !std::isfinite(alloc[i])) {
      report(fmt(where, "allocation[%zu] = %g is negative or non-finite", i,
                 alloc[i]),
             __FILE__, __LINE__);
    }
    if (alloc[i] > caps[i] + tol) {
      report(fmt(where, "allocation %g exceeds APC_alone cap %g", alloc[i],
                 caps[i]),
             __FILE__, __LINE__);
    }
    sum += alloc[i];
  }
  const double expect =
      std::min(b, std::accumulate(caps.begin(), caps.end(), 0.0));
  if (std::fabs(sum - expect) > tol) {
    report(fmt(where, "Eq. 2 violated — allocations sum to %g, expected %g",
               sum, expect),
           __FILE__, __LINE__);
  }
}

void bandwidth_accounting(std::span<const double> per_app, double total,
                          const char* where) {
  const double sum = std::accumulate(per_app.begin(), per_app.end(), 0.0);
  const double scale = std::max({std::fabs(total), std::fabs(sum), 1e-30});
  if (std::fabs(sum - total) > kAccountingRelTol * scale) {
    report(fmt(where,
               "Eq. 2 accounting — per-app APC sums to %g but total "
               "utilized bandwidth is %g",
               sum, total),
           __FILE__, __LINE__);
  }
}

}  // namespace bwpart::check
