// Weighted-objective generalization tests: degeneracy to the paper's
// schemes at unit weights, responsiveness to weights, and agreement with
// the numeric optimizer.
#include "core/weighted.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "common/rng.hpp"
#include "core/optimizer.hpp"
#include "core/predict.hpp"

namespace bwpart::core {
namespace {

std::vector<AppParams> workload() {
  return {{0.0066, 0.034}, {0.0067, 0.042}, {0.0035, 0.0052},
          {0.0019, 0.0041}};
}

const std::vector<double> kUnit{1.0, 1.0, 1.0, 1.0};

TEST(WeightedMetrics, UnitWeightsReduceToUnweighted) {
  const std::vector<double> alone{1.0, 2.0, 0.5, 4.0};
  const std::vector<double> shared{0.5, 1.5, 0.4, 1.0};
  EXPECT_NEAR(weighted_harmonic_speedup(shared, alone, kUnit),
              harmonic_weighted_speedup(shared, alone), 1e-12);
  EXPECT_NEAR(weighted_weighted_speedup(shared, alone, kUnit),
              weighted_speedup(shared, alone), 1e-12);
  EXPECT_NEAR(weighted_ipc_sum(shared, kUnit), ipc_sum(shared), 1e-12);
  EXPECT_NEAR(weighted_min_fairness(shared, alone, kUnit),
              min_fairness(shared, alone), 1e-12);
}

TEST(WeightedAllocation, UnitWeightsReduceToPaperSchemes) {
  const auto apps = workload();
  const double b = 0.0095;
  struct Pair {
    Metric metric;
    Scheme scheme;
  };
  for (const Pair& p :
       {Pair{Metric::HarmonicWeightedSpeedup, Scheme::SquareRoot},
        Pair{Metric::MinFairness, Scheme::Proportional},
        Pair{Metric::WeightedSpeedup, Scheme::PriorityApc},
        Pair{Metric::IpcSum, Scheme::PriorityApi}}) {
    const auto weighted = weighted_optimal_allocation(p.metric, apps, kUnit, b);
    const auto derived = analytic_allocation(p.scheme, apps, b);
    for (std::size_t i = 0; i < apps.size(); ++i) {
      EXPECT_NEAR(weighted[i], derived[i], 1e-12)
          << to_string(p.metric) << " app " << i;
    }
  }
}

TEST(WeightedAllocation, HigherWeightMeansMoreBandwidth) {
  const auto apps = workload();
  const double b = 0.0095;
  std::vector<double> weights = kUnit;
  weights[3] = 8.0;  // favor gobmk heavily
  for (Metric m : {Metric::HarmonicWeightedSpeedup, Metric::MinFairness}) {
    const auto base = weighted_optimal_allocation(m, apps, kUnit, b);
    const auto favored = weighted_optimal_allocation(m, apps, weights, b);
    EXPECT_GT(favored[3], base[3]) << to_string(m);
  }
}

TEST(WeightedAllocation, KnapsackOrderFollowsWeightedDensity) {
  const auto apps = workload();
  // Give milc (highest APC_alone) an enormous weight: under weighted Wsp it
  // must now be filled first despite its low unweighted density.
  std::vector<double> weights = kUnit;
  weights[1] = 100.0;
  const auto alloc = weighted_optimal_allocation(Metric::WeightedSpeedup,
                                                 apps, weights, 0.006);
  // The whole budget (below milc's cap) goes to milc; everyone else starves.
  EXPECT_NEAR(alloc[1], 0.006, 1e-12);
  EXPECT_DOUBLE_EQ(alloc[0] + alloc[2] + alloc[3], 0.0);
}

TEST(WeightedAllocation, FairnessEqualizesWeightedSpeedups) {
  const auto apps = workload();
  const std::vector<double> weights{1.0, 2.0, 1.0, 0.5};
  const auto alloc =
      weighted_optimal_allocation(Metric::MinFairness, apps, weights, 0.008);
  // speedup_i / w_i equal across apps (when no cap binds).
  const double ref = alloc[0] / apps[0].apc_alone / weights[0];
  for (std::size_t i = 1; i < apps.size(); ++i) {
    EXPECT_NEAR(alloc[i] / apps[i].apc_alone / weights[i], ref, 1e-9);
  }
}

TEST(WeightedAllocation, NumericOptimizerAgrees) {
  const auto apps = workload();
  Rng rng(77);
  for (int trial = 0; trial < 6; ++trial) {
    std::vector<double> weights(apps.size());
    for (double& w : weights) w = 0.25 + 2.0 * rng.next_double();
    const double b = 0.006 + 0.004 * rng.next_double();
    for (Metric m : kAllMetrics) {
      const auto analytic =
          weighted_optimal_allocation(m, apps, weights, b);
      // Optimize the weighted objective numerically from scratch.
      std::vector<double> alone;
      for (const auto& a : apps) alone.push_back(a.ipc_alone());
      std::vector<AppParams> owned = apps;
      const AllocationObjective obj =
          [&owned, &alone, &weights, m](std::span<const double> apc) {
            std::vector<double> shared(apc.size());
            for (std::size_t i = 0; i < apc.size(); ++i) {
              shared[i] = owned[i].ipc_at(std::max(apc[i], 1e-15));
            }
            return evaluate_weighted_metric(m, shared, alone, weights);
          };
      const auto numeric = optimize_allocation(obj, apps, b);
      std::vector<double> shared_a(apps.size()), shared_n(apps.size());
      for (std::size_t i = 0; i < apps.size(); ++i) {
        shared_a[i] = apps[i].ipc_at(std::max(analytic[i], 1e-15));
        shared_n[i] = apps[i].ipc_at(std::max(numeric[i], 1e-15));
      }
      std::vector<double> alone2 = alone;
      const double v_a =
          evaluate_weighted_metric(m, shared_a, alone2, weights);
      const double v_n =
          evaluate_weighted_metric(m, shared_n, alone2, weights);
      EXPECT_LE(v_n, v_a * 1.001) << to_string(m) << " trial " << trial;
      EXPECT_GE(v_n, v_a * 0.98) << to_string(m) << " trial " << trial;
    }
  }
}

TEST(WeightedAllocation, SharesNormalized) {
  const auto apps = workload();
  const std::vector<double> weights{2.0, 1.0, 1.0, 3.0};
  for (Metric m : kAllMetrics) {
    const auto beta =
        weighted_optimal_shares(m, apps, weights, 0.0095);
    const double sum = std::accumulate(beta.begin(), beta.end(), 0.0);
    EXPECT_NEAR(sum, 1.0, 1e-9) << to_string(m);
  }
}

}  // namespace
}  // namespace bwpart::core
