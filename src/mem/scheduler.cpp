#include "mem/scheduler.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/check.hpp"

namespace bwpart::mem {

namespace {
/// Deterministic final tie-break so `before` is a strict weak ordering even
/// when two requests arrived on the same cycle.
bool older(const MemRequest& a, const MemRequest& b) {
  if (a.arrival_cpu != b.arrival_cpu) return a.arrival_cpu < b.arrival_cpu;
  return a.id < b.id;
}
}  // namespace

bool FcfsScheduler::before(const MemRequest& a, const MemRequest& b,
                           const dram::DramSystem& dram) const {
  (void)dram;
  return older(a, b);
}

FrFcfsScheduler::FrFcfsScheduler(std::uint32_t row_hit_streak_cap)
    : streak_cap_(row_hit_streak_cap) {}

void FrFcfsScheduler::on_issue(const MemRequest& req) {
  if (streak_cap_ == 0) return;
  if (has_last_ && req.loc.rank == last_rank_ && req.loc.bank == last_bank_) {
    ++streak_;
  } else {
    streak_ = 1;
    last_rank_ = req.loc.rank;
    last_bank_ = req.loc.bank;
    has_last_ = true;
  }
}

bool FrFcfsScheduler::hit_priority_allowed(
    const MemRequest& r, const dram::DramSystem& dram) const {
  if (!dram.is_row_hit(r.loc)) return false;
  if (streak_cap_ == 0) return true;
  // Once a bank has absorbed `streak_cap_` consecutive column accesses,
  // further hits to it lose their priority until another bank is served.
  if (has_last_ && r.loc.rank == last_rank_ && r.loc.bank == last_bank_ &&
      streak_ >= streak_cap_) {
    return false;
  }
  return true;
}

bool FrFcfsScheduler::before(const MemRequest& a, const MemRequest& b,
                             const dram::DramSystem& dram) const {
  const bool hit_a = hit_priority_allowed(a, dram);
  const bool hit_b = hit_priority_allowed(b, dram);
  if (hit_a != hit_b) return hit_a;
  return older(a, b);
}

BatchScheduler::BatchScheduler(std::size_t num_apps, std::size_t per_app_cap)
    : per_app_cap_(per_app_cap), arrival_count_(num_apps, 0) {
  BWPART_ASSERT(num_apps > 0, "scheduler needs at least one app");
  BWPART_ASSERT(per_app_cap > 0, "batch cap must be positive");
}

void BatchScheduler::on_enqueue(MemRequest& req, Cycle now_cpu) {
  (void)now_cpu;
  BWPART_ASSERT(req.app < arrival_count_.size(), "app id out of range");
  // Reuse the start_tag field to carry the batch number.
  req.start_tag = static_cast<double>(arrival_count_[req.app] / per_app_cap_);
  ++arrival_count_[req.app];
}

bool BatchScheduler::before(const MemRequest& a, const MemRequest& b,
                            const dram::DramSystem& dram) const {
  if (a.start_tag != b.start_tag) return a.start_tag < b.start_tag;
  const bool hit_a = dram.is_row_hit(a.loc);
  const bool hit_b = dram.is_row_hit(b.loc);
  if (hit_a != hit_b) return hit_a;
  return older(a, b);
}

StartTimeFairScheduler::StartTimeFairScheduler(std::size_t num_apps,
                                               double row_hit_window)
    : next_tag_(num_apps, 0.0),
      increment_(num_apps, static_cast<double>(num_apps)),
      row_hit_window_(row_hit_window) {
  BWPART_ASSERT(num_apps > 0, "scheduler needs at least one app");
  BWPART_ASSERT(row_hit_window >= 0.0, "negative row-hit window");
}

void StartTimeFairScheduler::on_enqueue(MemRequest& req, Cycle now_cpu) {
  (void)now_cpu;  // the modified DSTF tag is arrival-time independent
  BWPART_ASSERT(req.app < next_tag_.size(), "app id out of range");
  req.start_tag = next_tag_[req.app];
  next_tag_[req.app] += increment_[req.app];
}

bool StartTimeFairScheduler::before(const MemRequest& a, const MemRequest& b,
                                    const dram::DramSystem& dram) const {
  if (row_hit_window_ > 0.0) {
    const bool hit_a = dram.is_row_hit(a.loc);
    const bool hit_b = dram.is_row_hit(b.loc);
    if (hit_a != hit_b) {
      // A row hit may bypass a lower-tagged row miss only within the window
      // (bounded priority inversion, like FQ-VFTF's tRAS blocking bound).
      const double gap = hit_a ? b.start_tag - a.start_tag
                               : a.start_tag - b.start_tag;
      if (gap >= -row_hit_window_) return hit_a;
    }
  }
  if (a.start_tag != b.start_tag) return a.start_tag < b.start_tag;
  return older(a, b);
}

void StartTimeFairScheduler::set_shares(std::span<const double> beta) {
  BWPART_ASSERT(beta.size() == increment_.size(), "share vector arity");
  BWPART_CHECK_RUN(
      check::share_vector(beta, "StartTimeFairScheduler::set_shares"));
  for (std::size_t i = 0; i < beta.size(); ++i) {
    BWPART_ASSERT(beta[i] >= 0.0, "negative share");
    // A zero share would starve the app entirely; clamp so every app makes
    // progress (the analytic schemes never hand out exact zeros anyway).
    const double b = std::max(beta[i], 1e-6);
    increment_[i] = 1.0 / b;
  }
}

double StartTimeFairScheduler::virtual_clock(AppId app) const {
  BWPART_ASSERT(app < next_tag_.size(), "app id out of range");
  return next_tag_[app];
}

double StartTimeFairScheduler::virtual_time_lag() const {
  double lo = next_tag_[0];
  double hi = next_tag_[0];
  for (const double t : next_tag_) {
    lo = std::min(lo, t);
    hi = std::max(hi, t);
  }
  return hi - lo;
}

ClassicDstfScheduler::ClassicDstfScheduler(std::size_t num_apps)
    : last_finish_(num_apps, 0.0),
      increment_(num_apps, static_cast<double>(num_apps)) {
  BWPART_ASSERT(num_apps > 0, "scheduler needs at least one app");
}

void ClassicDstfScheduler::on_enqueue(MemRequest& req, Cycle now_cpu) {
  (void)now_cpu;
  BWPART_ASSERT(req.app < last_finish_.size(), "app id out of range");
  // Anchor to the service virtual clock: idle time is forfeited.
  req.start_tag = std::max(virtual_time_, last_finish_[req.app]);
  last_finish_[req.app] = req.start_tag + increment_[req.app];
}

void ClassicDstfScheduler::on_issue(const MemRequest& req) {
  virtual_time_ = std::max(virtual_time_, req.start_tag);
}

bool ClassicDstfScheduler::before(const MemRequest& a, const MemRequest& b,
                                  const dram::DramSystem& dram) const {
  (void)dram;
  if (a.start_tag != b.start_tag) return a.start_tag < b.start_tag;
  return older(a, b);
}

double ClassicDstfScheduler::virtual_time_lag() const {
  double lo = last_finish_[0];
  double hi = last_finish_[0];
  for (const double f : last_finish_) {
    lo = std::min(lo, f);
    hi = std::max(hi, f);
  }
  return hi - lo;
}

void ClassicDstfScheduler::set_shares(std::span<const double> beta) {
  BWPART_ASSERT(beta.size() == increment_.size(), "share vector arity");
  BWPART_CHECK_RUN(
      check::share_vector(beta, "ClassicDstfScheduler::set_shares"));
  for (std::size_t i = 0; i < beta.size(); ++i) {
    increment_[i] = 1.0 / std::max(beta[i], 1e-6);
  }
}

StfmScheduler::StfmScheduler(std::size_t num_apps, double alpha)
    : slowdown_(num_apps, 1.0), alpha_(alpha) {
  BWPART_ASSERT(num_apps > 0, "scheduler needs at least one app");
  BWPART_ASSERT(alpha >= 1.0, "alpha must be >= 1");
}

void StfmScheduler::set_slowdowns(std::span<const double> slowdowns) {
  BWPART_ASSERT(slowdowns.size() == slowdown_.size(), "slowdown arity");
  for (std::size_t i = 0; i < slowdowns.size(); ++i) {
    BWPART_ASSERT(slowdowns[i] > 0.0, "slowdown must be positive");
    slowdown_[i] = slowdowns[i];
  }
}

bool StfmScheduler::fairness_mode_active() const {
  const auto [lo, hi] = std::minmax_element(slowdown_.begin(), slowdown_.end());
  return *hi / *lo > alpha_;
}

bool StfmScheduler::before(const MemRequest& a, const MemRequest& b,
                           const dram::DramSystem& dram) const {
  BWPART_ASSERT(a.app < slowdown_.size() && b.app < slowdown_.size(),
                "app id out of range");
  if (fairness_mode_active() && slowdown_[a.app] != slowdown_[b.app]) {
    return slowdown_[a.app] > slowdown_[b.app];
  }
  const bool hit_a = dram.is_row_hit(a.loc);
  const bool hit_b = dram.is_row_hit(b.loc);
  if (hit_a != hit_b) return hit_a;
  return older(a, b);
}

AtlasScheduler::AtlasScheduler(std::size_t num_apps, std::uint64_t quantum,
                               double decay)
    : attained_(num_apps, 0.0), quantum_(quantum), decay_(decay) {
  BWPART_ASSERT(num_apps > 0, "scheduler needs at least one app");
  BWPART_ASSERT(quantum > 0, "quantum must be positive");
  BWPART_ASSERT(decay >= 0.0 && decay < 1.0, "decay must be in [0, 1)");
}

void AtlasScheduler::on_issue(const MemRequest& req) {
  BWPART_ASSERT(req.app < attained_.size(), "app id out of range");
  attained_[req.app] += 1.0;
  if (++served_in_quantum_ >= quantum_) {
    served_in_quantum_ = 0;
    for (double& a : attained_) a *= decay_;
  }
}

double AtlasScheduler::attained(AppId app) const {
  BWPART_ASSERT(app < attained_.size(), "app id out of range");
  return attained_[app];
}

bool AtlasScheduler::before(const MemRequest& a, const MemRequest& b,
                            const dram::DramSystem& dram) const {
  (void)dram;
  BWPART_ASSERT(a.app < attained_.size() && b.app < attained_.size(),
                "app id out of range");
  if (attained_[a.app] != attained_[b.app]) {
    return attained_[a.app] < attained_[b.app];
  }
  return older(a, b);
}

TcmScheduler::TcmScheduler(std::size_t num_apps)
    : latency_cluster_(num_apps, true), attained_(num_apps, 0.0) {
  BWPART_ASSERT(num_apps > 0, "scheduler needs at least one app");
}

void TcmScheduler::set_clusters(std::span<const bool> latency_sensitive) {
  BWPART_ASSERT(latency_sensitive.size() == latency_cluster_.size(),
                "cluster vector arity");
  latency_cluster_.assign(latency_sensitive.begin(), latency_sensitive.end());
}

void TcmScheduler::on_issue(const MemRequest& req) {
  BWPART_ASSERT(req.app < attained_.size(), "app id out of range");
  attained_[req.app] += 1.0;
}

bool TcmScheduler::before(const MemRequest& a, const MemRequest& b,
                          const dram::DramSystem& dram) const {
  (void)dram;
  const bool lat_a = latency_cluster_[a.app];
  const bool lat_b = latency_cluster_[b.app];
  if (lat_a != lat_b) return lat_a;  // latency cluster always first
  if (!lat_a && attained_[a.app] != attained_[b.app]) {
    // Fairness inside the bandwidth-heavy cluster: least attained first.
    return attained_[a.app] < attained_[b.app];
  }
  return older(a, b);
}

StrictPriorityScheduler::StrictPriorityScheduler(std::size_t num_apps)
    : rank_(num_apps, 0), rank_key_(num_apps, 0.0) {
  BWPART_ASSERT(num_apps > 0, "scheduler needs at least one app");
}

bool StrictPriorityScheduler::before(const MemRequest& a, const MemRequest& b,
                                     const dram::DramSystem& dram) const {
  (void)dram;
  BWPART_ASSERT(a.app < rank_.size() && b.app < rank_.size(),
                "app id out of range");
  if (rank_[a.app] != rank_[b.app]) return rank_[a.app] < rank_[b.app];
  return older(a, b);
}

void StrictPriorityScheduler::set_priority_ranks(
    std::span<const std::uint32_t> ranks) {
  BWPART_ASSERT(ranks.size() == rank_.size(), "rank vector arity");
  rank_.assign(ranks.begin(), ranks.end());
  for (std::size_t i = 0; i < rank_.size(); ++i) {
    rank_key_[i] = static_cast<double>(rank_[i]);
  }
  ++key_version_;
}

namespace {

void save_vec(snap::Writer& w, const std::vector<double>& v) {
  w.u64(v.size());
  for (const double x : v) w.f64(x);
}

void restore_vec(snap::Reader& r, std::vector<double>& v) {
  snap::require(r.u64() == v.size(),
                "scheduler per-app vector arity differs from the snapshot's");
  for (double& x : v) x = r.f64();
}

}  // namespace

void FrFcfsScheduler::save_state(snap::Writer& w) const {
  w.u32(streak_cap_);
  w.u32(streak_);
  w.u32(last_rank_);
  w.u32(last_bank_);
  w.b(has_last_);
}

void FrFcfsScheduler::restore_state(snap::Reader& r) {
  streak_cap_ = r.u32();
  streak_ = r.u32();
  last_rank_ = r.u32();
  last_bank_ = r.u32();
  has_last_ = r.b();
}

void BatchScheduler::save_state(snap::Writer& w) const {
  w.sz(per_app_cap_);
  w.u64(arrival_count_.size());
  for (const std::uint64_t c : arrival_count_) w.u64(c);
}

void BatchScheduler::restore_state(snap::Reader& r) {
  per_app_cap_ = r.sz();
  snap::require(r.u64() == arrival_count_.size(),
                "scheduler per-app vector arity differs from the snapshot's");
  for (std::uint64_t& c : arrival_count_) c = r.u64();
}

void StartTimeFairScheduler::save_state(snap::Writer& w) const {
  w.f64(row_hit_window_);
  save_vec(w, next_tag_);
  save_vec(w, increment_);
}

void StartTimeFairScheduler::restore_state(snap::Reader& r) {
  row_hit_window_ = r.f64();
  restore_vec(r, next_tag_);
  restore_vec(r, increment_);
}

void ClassicDstfScheduler::save_state(snap::Writer& w) const {
  save_vec(w, last_finish_);
  save_vec(w, increment_);
  w.f64(virtual_time_);
}

void ClassicDstfScheduler::restore_state(snap::Reader& r) {
  restore_vec(r, last_finish_);
  restore_vec(r, increment_);
  virtual_time_ = r.f64();
}

void StfmScheduler::save_state(snap::Writer& w) const {
  w.f64(alpha_);
  save_vec(w, slowdown_);
}

void StfmScheduler::restore_state(snap::Reader& r) {
  alpha_ = r.f64();
  restore_vec(r, slowdown_);
}

void AtlasScheduler::save_state(snap::Writer& w) const {
  w.u64(quantum_);
  w.f64(decay_);
  w.u64(served_in_quantum_);
  save_vec(w, attained_);
}

void AtlasScheduler::restore_state(snap::Reader& r) {
  quantum_ = r.u64();
  decay_ = r.f64();
  served_in_quantum_ = r.u64();
  restore_vec(r, attained_);
}

void TcmScheduler::save_state(snap::Writer& w) const {
  w.u64(latency_cluster_.size());
  for (const bool lat : latency_cluster_) w.b(lat);
  save_vec(w, attained_);
}

void TcmScheduler::restore_state(snap::Reader& r) {
  snap::require(r.u64() == latency_cluster_.size(),
                "scheduler per-app vector arity differs from the snapshot's");
  for (std::size_t i = 0; i < latency_cluster_.size(); ++i) {
    latency_cluster_[i] = r.b();
  }
  restore_vec(r, attained_);
}

void StrictPriorityScheduler::save_state(snap::Writer& w) const {
  w.u64(rank_.size());
  for (const std::uint32_t rk : rank_) w.u32(rk);
}

void StrictPriorityScheduler::restore_state(snap::Reader& r) {
  snap::require(r.u64() == rank_.size(),
                "scheduler per-app vector arity differs from the snapshot's");
  for (std::uint32_t& rk : rank_) rk = r.u32();
  for (std::size_t i = 0; i < rank_.size(); ++i) {
    rank_key_[i] = static_cast<double>(rank_[i]);
  }
  ++key_version_;
}

std::unique_ptr<Scheduler> make_scheduler_by_name(std::string_view name,
                                                  std::size_t num_apps) {
  if (name == "FCFS") return std::make_unique<FcfsScheduler>();
  if (name == "FR-FCFS") return std::make_unique<FrFcfsScheduler>();
  if (name == "PAR-BS") return std::make_unique<BatchScheduler>(num_apps);
  if (name == "StartTimeFair") {
    return std::make_unique<StartTimeFairScheduler>(num_apps);
  }
  if (name == "ClassicDSTF") {
    return std::make_unique<ClassicDstfScheduler>(num_apps);
  }
  if (name == "STFM") return std::make_unique<StfmScheduler>(num_apps);
  if (name == "ATLAS") return std::make_unique<AtlasScheduler>(num_apps);
  if (name == "TCM") return std::make_unique<TcmScheduler>(num_apps);
  if (name == "StrictPriority") {
    return std::make_unique<StrictPriorityScheduler>(num_apps);
  }
  return nullptr;
}

}  // namespace bwpart::mem
