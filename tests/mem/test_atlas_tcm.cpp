// ATLAS (least-attained-service) and TCM-lite scheduler tests.
#include <gtest/gtest.h>

#include <array>
#include <memory>

#include "mem/controller.hpp"
#include "mem/scheduler.hpp"

namespace bwpart::mem {
namespace {

dram::DramSystem make_dram() {
  dram::DramConfig cfg = dram::DramConfig::ddr2_400();
  cfg.enable_refresh = false;
  return dram::DramSystem(cfg);
}

MemRequest req(std::uint64_t id, AppId app, Cycle arrival) {
  MemRequest r;
  r.id = id;
  r.app = app;
  r.arrival_cpu = arrival;
  return r;
}

TEST(Atlas, LeastAttainedGoesFirst) {
  auto d = make_dram();
  AtlasScheduler s(2);
  // App 0 has been served three times.
  for (int i = 0; i < 3; ++i) s.on_issue(req(0, 0, 0));
  MemRequest hog = req(10, 0, 5);     // older
  MemRequest light = req(11, 1, 50);  // newer but unserved
  EXPECT_TRUE(s.before(light, hog, d));
}

TEST(Atlas, TiesFallBackToAge) {
  auto d = make_dram();
  AtlasScheduler s(2);
  MemRequest a = req(0, 0, 10);
  MemRequest b = req(1, 1, 5);
  EXPECT_TRUE(s.before(b, a, d));
}

TEST(Atlas, QuantumDecayForgivesHistory) {
  AtlasScheduler s(2, /*quantum=*/4, /*decay=*/0.5);
  for (int i = 0; i < 4; ++i) s.on_issue(req(0, 0, 0));
  // Quantum boundary hit: attained halves.
  EXPECT_DOUBLE_EQ(s.attained(0), 2.0);
  EXPECT_DOUBLE_EQ(s.attained(1), 0.0);
}

TEST(Atlas, EndToEndBalancesUnequalDemands) {
  // Heavy streamer vs moderate app: ATLAS keeps their *served* counts far
  // closer than demand-proportional FCFS would.
  auto run = [](std::unique_ptr<Scheduler> sched) {
    dram::DramConfig cfg = dram::DramConfig::ddr2_400();
    cfg.enable_refresh = false;
    MemoryController mc(cfg, Frequency::from_ghz(5.0), 2, std::move(sched),
                        32, dram::MapScheme::ChanRowColBankRank, 64,
                        AdmissionMode::PerApp);
    mc.set_completion_callback([](const MemRequest&, Cycle) {});
    std::uint64_t h = 0, l = 1u << 20;
    for (Cycle t = 0; t < 200'000; ++t) {
      while (mc.can_accept(0)) mc.enqueue(0, (h++) * 64, AccessType::Read, t);
      if (t % 200 == 0 && mc.can_accept(1)) {
        mc.enqueue(1, (l++) * 64, AccessType::Read, t);
      }
      mc.tick(t);
    }
    return static_cast<double>(mc.app_stats(1).served()) /
           static_cast<double>(mc.app_stats(0).served() +
                               mc.app_stats(1).served());
  };
  const double atlas_share = run(std::make_unique<AtlasScheduler>(2));
  const double fcfs_share = run(std::make_unique<FcfsScheduler>());
  // The light app offers ~5% of traffic; ATLAS must serve all of it
  // promptly (its attained count is always lowest).
  EXPECT_GE(atlas_share, fcfs_share);
  EXPECT_GT(atlas_share, 0.04);
}

TEST(Tcm, LatencyClusterAlwaysWins) {
  auto d = make_dram();
  TcmScheduler s(2);
  const std::array<bool, 2> clusters{false, true};  // app 1 latency-sensitive
  s.set_clusters(clusters);
  for (int i = 0; i < 10; ++i) s.on_issue(req(0, 0, 0));
  MemRequest heavy = req(20, 0, 5);
  MemRequest latency = req(21, 1, 500);
  EXPECT_TRUE(s.before(latency, heavy, d));
  EXPECT_FALSE(s.before(heavy, latency, d));
}

TEST(Tcm, HeavyClusterUsesLeastAttained) {
  auto d = make_dram();
  TcmScheduler s(3);
  const std::array<bool, 3> clusters{false, false, true};
  s.set_clusters(clusters);
  s.on_issue(req(0, 0, 0));
  s.on_issue(req(1, 0, 0));
  MemRequest a = req(10, 0, 5);   // heavy, attained 2
  MemRequest b = req(11, 1, 50);  // heavy, attained 0
  EXPECT_TRUE(s.before(b, a, d));
}

TEST(Tcm, LatencyClusterOrderedByAge) {
  auto d = make_dram();
  TcmScheduler s(2);  // both latency-sensitive by default
  MemRequest a = req(0, 0, 10);
  MemRequest b = req(1, 1, 5);
  EXPECT_TRUE(s.before(b, a, d));
}

TEST(Tcm, EndToEndProtectsLatencySensitiveApp) {
  auto sched = std::make_unique<TcmScheduler>(2);
  const std::array<bool, 2> clusters{false, true};
  sched->set_clusters(clusters);
  dram::DramConfig cfg = dram::DramConfig::ddr2_400();
  cfg.enable_refresh = false;
  MemoryController mc(cfg, Frequency::from_ghz(5.0), 2, std::move(sched), 32,
                      dram::MapScheme::ChanRowColBankRank, 64,
                      AdmissionMode::PerApp);
  std::uint64_t lat_sum = 0, lat_cnt = 0;
  mc.set_completion_callback([&](const MemRequest& r, Cycle done) {
    if (r.app == 1) {
      lat_sum += done - r.arrival_cpu;
      ++lat_cnt;
    }
  });
  std::uint64_t h = 0, l = 1u << 20;
  for (Cycle t = 0; t < 150'000; ++t) {
    while (mc.can_accept(0)) mc.enqueue(0, (h++) * 64, AccessType::Read, t);
    if (t % 1000 == 0 && mc.can_accept(1)) {
      mc.enqueue(1, (l++) * 64, AccessType::Read, t);
    }
    mc.tick(t);
  }
  ASSERT_GT(lat_cnt, 0u);
  // Latency-sensitive requests bypass the heavy backlog entirely.
  EXPECT_LT(static_cast<double>(lat_sum) / static_cast<double>(lat_cnt),
            1200.0);
}

}  // namespace
}  // namespace bwpart::mem
