// The DramGeneration registry and its per-generation test matrix:
// (a) registry API — built-ins present in order, unknown names rejected
//     loudly listing every registered set, runtime registration;
// (b) derived-matrix spot checks — posted CAS (tAL) on DDR4, HBM-class
//     geometry, peak-bandwidth laddering across families;
// (c) property — for EVERY registered generation, >= 200 randomized command
//     streams driven through the SoA fast path produce zero violations in
//     the independently-derived shadow protocol checker;
// (d) negatives — streams tampered to break tRCD (DDR3/DDR4, including the
//     posted-CAS window) and tFAW are caught and named by the shadow.
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "common/pbt.hpp"
#include "dram/config.hpp"
#include "dram/dram_system.hpp"
#include "dram/protocol_checker.hpp"
#include "dram/timing_table.hpp"

namespace bwpart::dram {
namespace {

// ---------------------------------------------------------------------------
// (a) Registry API.

TEST(GenerationRegistry, BuiltinsRegisteredInOrder) {
  const std::vector<DramGeneration>& gens = dram_generations();
  ASSERT_GE(gens.size(), 7u);
  const char* expected[] = {"ddr2_400",  "ddr2_800",  "ddr2_1600",
                            "ddr3_1066", "ddr3_1600", "ddr4_2400",
                            "hbm_like"};
  for (std::size_t i = 0; i < std::size(expected); ++i) {
    EXPECT_EQ(gens[i].name, expected[i]);
    EXPECT_EQ(gens[i].config.generation, expected[i])
        << "config.generation must mirror the registry key";
    EXPECT_FALSE(gens[i].family.empty());
  }
}

TEST(GenerationRegistry, UnknownNameThrowsListingEveryRegisteredSet) {
  EXPECT_EQ(find_dram_generation("ddr5_6400"), nullptr);
  try {
    (void)dram_config_for_generation("ddr5_6400");
    FAIL() << "unknown generation was accepted";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("ddr5_6400"), std::string::npos) << what;
    for (const DramGeneration& g : dram_generations()) {
      EXPECT_NE(what.find(g.name), std::string::npos)
          << "error must list '" << g.name << "': " << what;
    }
  }
}

TEST(GenerationRegistry, RuntimeRegistrationAndDuplicateRejection) {
  DramGeneration g;
  g.name = "custom_test_gen";
  g.family = "DDR3";
  g.notes = "registered by test_generation_matrix";
  g.config = dram_config_for_generation("ddr3_1600");
  register_dram_generation(g);
  const DramGeneration* back = find_dram_generation("custom_test_gen");
  ASSERT_NE(back, nullptr);
  // The registry stamps config.generation with the registry key.
  EXPECT_EQ(back->config.generation, "custom_test_gen");
  EXPECT_EQ(back->config.bus_clock.hz,
            dram_config_for_generation("ddr3_1600").bus_clock.hz);
  EXPECT_THROW(register_dram_generation(g), std::invalid_argument);
  DramGeneration unnamed;
  EXPECT_THROW(register_dram_generation(unnamed), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// (b) Derived-matrix spot checks.

TEST(GenerationMatrix, PeakBandwidthLaddersAcrossFamilies) {
  EXPECT_NEAR(dram_config_for_generation("ddr3_1066").peak_gbps(), 8.528,
              1e-9);
  EXPECT_NEAR(dram_config_for_generation("ddr3_1600").peak_gbps(), 12.8,
              1e-9);
  EXPECT_NEAR(dram_config_for_generation("ddr4_2400").peak_gbps(), 19.2,
              1e-9);
  // HBM-like: 2 x 500 MHz x 16 B x 4 channels = 64 GB/s aggregate.
  EXPECT_NEAR(dram_config_for_generation("hbm_like").peak_gbps(), 64.0,
              1e-9);
}

TEST(GenerationMatrix, Ddr4PostedCasShapesTheDerivedTables) {
  const DramConfig cfg = dram_config_for_generation("ddr4_2400");
  const TimingsTicks t = cfg.ticks();
  // 0.8333 ns tick: AL = ceil(8.33 / 0.8333) = 10, CL = tRCD = 16.
  EXPECT_EQ(t.al, 10u);
  EXPECT_EQ(t.cl, 16u);
  EXPECT_EQ(t.rcd, 16u);
  const CmdTimings c = CmdTimings::build(t);
  // The column command may be issued tAL early...
  EXPECT_EQ(c.act_to_col, t.rcd - t.al);
  // ...and every command-relative data/precharge latency grows by tAL.
  EXPECT_EQ(c.rd_lat, t.al + t.cl);
  EXPECT_EQ(c.wr_lat, t.al + t.cwl);
  EXPECT_EQ(c.rd_to_pre, t.al + t.rtp);
  EXPECT_EQ(c.wr_to_pre, t.al + t.cwl + t.burst + t.wr);
  EXPECT_EQ(c.rd_to_data_end, t.al + t.cl + t.burst);
  // ACT -> first read data is tAL-invariant: (tRCD - tAL) + (tAL + tCL).
  EXPECT_EQ(c.act_to_col + c.rd_lat, t.rcd + t.cl);
}

TEST(GenerationMatrix, HbmLikeGeometryKeepsLineSizedBursts) {
  const DramConfig cfg = dram_config_for_generation("hbm_like");
  // 16B bus x 4 beats = one 64B line, 2 bus ticks of data occupancy.
  EXPECT_EQ(cfg.bus_bytes * cfg.burst_beats, 64u);
  EXPECT_EQ(cfg.ticks().burst, 2u);
  EXPECT_EQ(cfg.channels, 4u);
  EXPECT_EQ(cfg.total_banks(), 64u);
}

// ---------------------------------------------------------------------------
// (c) Property: every registered generation's engine streams satisfy the
// shadow checker. The checker consumes the raw parameter set (DramConfig)
// and re-derives the JEDEC rules — including the posted-CAS shift — with
// none of the SoA fast path's precomputed tables, so agreement here is
// double-entry bookkeeping over the whole registry.

struct StreamCase {
  std::uint64_t seed = 0;
  int ticks = 0;
  bool open_page = false;
  bool refresh = true;
};

pbt::GenFn<StreamCase> stream_case_gen() {
  return [](Rng& rng) {
    StreamCase c;
    c.seed = rng.next_u64();
    c.ticks = static_cast<int>(pbt::gen_uint(rng, 400, 1200));
    c.open_page = rng.next_bool(0.5);
    c.refresh = rng.next_bool(0.75);
    return c;
  };
}

std::string print_stream_case(const StreamCase& c) {
  std::ostringstream os;
  os << "seed=" << c.seed << " ticks=" << c.ticks
     << " page=" << (c.open_page ? "open" : "close")
     << " refresh=" << c.refresh;
  return os.str();
}

TEST(GenerationProperty, EveryGenerationsEngineStreamsPassTheShadow) {
  if constexpr (!check::kEnabled) {
    GTEST_SKIP() << "BWPART_CHECK is compiled out";
  }
  check::Recorder rec;  // a disagreement fails the test instead of aborting
  for (const DramGeneration& g : dram_generations()) {
    SCOPED_TRACE(g.name);
    std::uint64_t total_checked = 0;
    const pbt::Result r = pbt::for_all<StreamCase>(
        ("engine-vs-shadow@" + g.name).c_str(), stream_case_gen(),
        [&](const StreamCase& c) -> std::string {
          rec.clear();
          DramConfig cfg = g.config;
          cfg.page_policy =
              c.open_page ? PagePolicy::Open : PagePolicy::Close;
          cfg.enable_refresh = c.refresh;
          DramSystem dram(cfg);
          Rng rng(c.seed);
          for (Tick now = 0; now < static_cast<Tick>(c.ticks); ++now) {
            dram.tick(now);
            for (int attempt = 0; attempt < 2; ++attempt) {
              Location loc{};
              loc.channel =
                  static_cast<std::uint32_t>(rng.next_below(cfg.channels));
              loc.rank =
                  static_cast<std::uint32_t>(rng.next_below(cfg.ranks));
              loc.bank = static_cast<std::uint32_t>(
                  rng.next_below(cfg.banks_per_rank));
              loc.row = rng.next_below(8);
              loc.column = static_cast<std::uint32_t>(rng.next_below(64));
              const AccessType at =
                  rng.next_bool(0.3) ? AccessType::Write : AccessType::Read;
              const Command cmd{dram.required_command(loc, at), loc, 0, 0};
              if (dram.can_issue(cmd, now)) dram.issue(cmd, now);
            }
          }
          const ProtocolChecker* pc = dram.protocol_checker();
          if (pc == nullptr) return "checker not attached";
          total_checked += pc->commands_checked();
          if (pc->violations() != 0 || rec.count() != 0) {
            std::ostringstream os;
            os << pc->violations() << " shadow violations; first: "
               << (rec.violations().empty()
                       ? "<none recorded>"
                       : rec.violations().front().what);
            return os.str();
          }
          return {};
        },
        {}, nullptr, print_stream_case);
    EXPECT_TRUE(r.ok) << r.report();
    EXPECT_GE(r.cases_run, 200);
    EXPECT_GT(total_checked, 0u)
        << g.name << " streams issued no commands at all";
  }
}

// ---------------------------------------------------------------------------
// (d) Negatives: tampered streams under the new generations are caught.

// Records a legal open-page read stream from the real SoA engine under
// `gen`, verifies it passes the shadow clean, then pulls one column command
// inside its (posted-CAS-adjusted) tRCD window and requires the shadow to
// catch and name the violation. Under DDR4 the earliest legal column tick
// is ACT + (tRCD - tAL); one tick earlier than THAT is what a buggy
// fast-path table would emit, and the checker must still flag it.
void expect_trcd_tamper_caught(const char* gen) {
  SCOPED_TRACE(gen);
  DramConfig cfg = dram_config_for_generation(gen);
  cfg.enable_refresh = false;
  cfg.page_policy = PagePolicy::Open;
  DramSystem engine(cfg);
  std::vector<Command> cmds;
  std::vector<Tick> ticks;
  Tick now = 0;
  std::uint64_t row = 1;
  while (cmds.size() < 24 && now < 50'000) {
    engine.tick(now);
    const Location loc{0, 0, 0, row, 0};
    const Command cmd{engine.required_command(loc, AccessType::Read), loc, 0,
                      0};
    if (engine.can_issue(cmd, now)) {
      engine.issue(cmd, now);
      cmds.push_back(cmd);
      ticks.push_back(now);
      if (is_read_command(cmd.type)) ++row;
    }
    ++now;
  }
  ASSERT_GE(cmds.size(), 24u);

  check::Recorder rec;
  {
    ProtocolChecker shadow(cfg);
    for (std::size_t i = 0; i < cmds.size(); ++i) {
      EXPECT_EQ(shadow.observe(cmds[i], ticks[i]), 0)
          << "legal engine stream flagged at command " << i;
    }
    EXPECT_EQ(shadow.violations(), 0u);
  }
  ASSERT_EQ(rec.count(), 0u);

  std::size_t rd_at = 0;
  for (std::size_t i = 0; i + 1 < cmds.size(); ++i) {
    if (cmds[i].type == CommandType::Activate &&
        is_read_command(cmds[i + 1].type)) {
      rd_at = i + 1;
      break;
    }
  }
  ASSERT_GT(rd_at, 0u);
  const TimingsTicks t = engine.timings();
  std::vector<Tick> tampered = ticks;
  tampered[rd_at] = ticks[rd_at - 1] + (t.rcd - t.al) - 1;
  ProtocolChecker shadow(cfg);
  int flagged = 0;
  for (std::size_t i = 0; i < cmds.size(); ++i) {
    flagged += shadow.observe(cmds[i], tampered[i]);
  }
  EXPECT_GT(flagged, 0);
  EXPECT_TRUE(rec.caught("tRCD")) << "violations recorded: " << rec.count();
}

TEST(GenerationNegative, Ddr3TrcdTamperIsCaught) {
  expect_trcd_tamper_caught("ddr3_1600");
}

TEST(GenerationNegative, Ddr4PostedCasTrcdTamperIsCaught) {
  // tAL > 0 here: the tampered tick sits tAL earlier than raw tRCD, inside
  // the posted-CAS window — only an AL-aware checker can flag it.
  const TimingsTicks t = dram_config_for_generation("ddr4_2400").ticks();
  ASSERT_GT(t.al, 0u);
  expect_trcd_tamper_caught("ddr4_2400");
}

Command act_at(std::uint32_t bank, std::uint64_t row) {
  return Command{CommandType::Activate, Location{0, 0, bank, row, 0}, 0, 0};
}

// Five ACTs to distinct banks of one rank, spaced exactly tRRD apart so the
// fifth lands inside the tFAW window without breaking tRRD — the checker
// must name tFAW, not tRRD. Works for any generation where 4 x tRRD < tFAW
// (true for the shipped DDR3-1600 and DDR4-2400 sets; stock DDR2-400 has
// 4 x tRRD == tFAW, which is why the DDR2 suite stretches tFAW instead).
void expect_faw_tamper_caught(const char* gen) {
  SCOPED_TRACE(gen);
  const DramConfig cfg = dram_config_for_generation(gen);
  const TimingsTicks t = cfg.ticks();
  ASSERT_LT(4 * t.rrd, t.faw)
      << gen << " cannot stage a pure tFAW break (tRRD window too wide)";
  check::Recorder rec;
  ProtocolChecker pc(cfg);
  for (std::uint32_t i = 0; i < 4; ++i) {
    EXPECT_EQ(pc.observe(act_at(i, 1), i * t.rrd), 0);
  }
  ASSERT_EQ(rec.count(), 0u);
  EXPECT_EQ(pc.observe(act_at(4, 1), 4 * t.rrd), 1);
  EXPECT_TRUE(rec.caught("tFAW")) << "violations: " << rec.count();
  EXPECT_FALSE(rec.caught("tRRD"));
}

TEST(GenerationNegative, Ddr3FifthActivateInsideFawIsCaught) {
  expect_faw_tamper_caught("ddr3_1600");
}

TEST(GenerationNegative, Ddr4FifthActivateInsideFawIsCaught) {
  expect_faw_tamper_caught("ddr4_2400");
}

}  // namespace
}  // namespace bwpart::dram
