# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_qos_guarantee "/root/repo/build/examples/qos_guarantee" "0.6" "2")
set_tests_properties(example_qos_guarantee PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_shared_l2 "/root/repo/build/examples/shared_l2_study")
set_tests_properties(example_shared_l2 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_trace_replay "/root/repo/build/examples/trace_replay" "20000")
set_tests_properties(example_trace_replay PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_scheme_explorer "/root/repo/build/examples/scheme_explorer" "hetero-1" "500000")
set_tests_properties(example_scheme_explorer PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(tool_bwpart_sim "/root/repo/build/src/tools/bwpart_sim" "--mix" "homo-6" "--scheme" "Square_root" "--cycles" "400000" "--csv")
set_tests_properties(tool_bwpart_sim PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
