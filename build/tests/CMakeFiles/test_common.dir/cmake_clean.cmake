file(REMOVE_RECURSE
  "CMakeFiles/test_common.dir/common/test_asserts.cpp.o"
  "CMakeFiles/test_common.dir/common/test_asserts.cpp.o.d"
  "CMakeFiles/test_common.dir/common/test_clock_crossing.cpp.o"
  "CMakeFiles/test_common.dir/common/test_clock_crossing.cpp.o.d"
  "CMakeFiles/test_common.dir/common/test_log.cpp.o"
  "CMakeFiles/test_common.dir/common/test_log.cpp.o.d"
  "CMakeFiles/test_common.dir/common/test_parallel.cpp.o"
  "CMakeFiles/test_common.dir/common/test_parallel.cpp.o.d"
  "CMakeFiles/test_common.dir/common/test_rng.cpp.o"
  "CMakeFiles/test_common.dir/common/test_rng.cpp.o.d"
  "CMakeFiles/test_common.dir/common/test_stats.cpp.o"
  "CMakeFiles/test_common.dir/common/test_stats.cpp.o.d"
  "CMakeFiles/test_common.dir/common/test_table.cpp.o"
  "CMakeFiles/test_common.dir/common/test_table.cpp.o.d"
  "CMakeFiles/test_common.dir/common/test_units.cpp.o"
  "CMakeFiles/test_common.dir/common/test_units.cpp.o.d"
  "test_common"
  "test_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
