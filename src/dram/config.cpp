#include "dram/config.hpp"

#include "common/clock_crossing.hpp"

namespace bwpart::dram {

TimingsTicks DramConfig::ticks() const {
  // ns -> whole bus ticks, rounding up (constraints are minimums).
  const double tick_ns = 1e9 / static_cast<double>(bus_clock.hz);
  auto conv = [tick_ns](double ns) -> Tick {
    const double ticks = ns / tick_ns;
    const auto whole = static_cast<Tick>(ticks);
    return (static_cast<double>(whole) >= ticks) ? whole : whole + 1;
  };
  TimingsTicks out;
  out.rp = conv(t.trp);
  out.rcd = conv(t.trcd);
  out.cl = conv(t.tcl);
  out.cwl = conv(t.tcwl);
  out.ras = conv(t.tras);
  out.wr = conv(t.twr);
  out.wtr = conv(t.twtr);
  out.rtp = conv(t.trtp);
  out.ccd = conv(t.tccd);
  out.rrd = conv(t.trrd);
  out.faw = conv(t.tfaw);
  out.rfc = conv(t.trfc);
  out.refi = conv(t.trefi);
  out.rtrs = conv(t.trtrs);
  out.xp = conv(t.txp);
  out.burst = burst_beats / 2;  // DDR: two beats per bus tick
  return out;
}

DramConfig DramConfig::ddr2_400() {
  DramConfig c;
  c.bus_clock = Frequency::from_mhz(200);
  return c;
}

DramConfig DramConfig::ddr2_800() {
  DramConfig c;
  c.bus_clock = Frequency::from_mhz(400);
  return c;
}

DramConfig DramConfig::ddr2_1600() {
  DramConfig c;
  c.bus_clock = Frequency::from_mhz(800);
  return c;
}

DramConfig DramConfig::ddr3_1066() {
  DramConfig c;
  c.bus_clock = Frequency::from_mhz(533);
  c.ranks = 2;
  c.banks_per_rank = 8;
  c.t.trp = 13.1;
  c.t.trcd = 13.1;
  c.t.tcl = 13.1;
  c.t.tcwl = 9.4;
  c.t.tras = 36.0;
  c.t.twr = 15.0;
  c.t.twtr = 7.5;
  c.t.trtp = 7.5;
  c.t.tccd = 7.5;
  c.t.trrd = 7.5;
  c.t.tfaw = 37.5;
  c.t.trfc = 160.0;
  c.t.trefi = 7800.0;
  return c;
}

}  // namespace bwpart::dram
