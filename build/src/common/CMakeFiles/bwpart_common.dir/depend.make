# Empty dependencies file for bwpart_common.
# This may be replaced when dependencies are built.
