// Memory-request scheduling policies.
//
// The controller scans its pending queue once per bus tick in the order a
// policy defines and issues the first legal DRAM command it finds. The
// policies implement the seven schemes of the paper's Section V-D:
//
//   No_partitioning                    -> FcfsScheduler
//   (utilization baseline, Section II) -> FrFcfsScheduler
//   Equal / Proportional / Square_root /
//   2/3_power (any share vector beta)  -> StartTimeFairScheduler
//   Priority_API / Priority_APC        -> StrictPriorityScheduler
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/snapshot_io.hpp"
#include "common/types.hpp"
#include "dram/dram_system.hpp"
#include "mem/request.hpp"

namespace bwpart::mem {

/// How the controller may order a policy's pending queue without calling
/// the virtual before() comparator per pair. Policies whose order is a
/// lexicographic (primary key, arrival_cpu, id) ascending sort advertise
/// where the primary key comes from; the controller then keeps its queues
/// sorted and scans them devirtualized. kDynamic keeps the exact-compare
/// fallback (row-hit tiers, mode switches — anything before() reads from
/// mutable DRAM or scheduler state per comparison).
struct SchedOrdering {
  enum class Mode : std::uint8_t {
    kDynamic,   ///< order only defined by before(); call it per compare
    kStatic,    ///< primary key = start_tag, frozen at enqueue
    kAppValue,  ///< primary key = app_value[req.app]
  };
  Mode mode = Mode::kDynamic;
  /// kAppValue only: per-application primary keys (one per app, owned by
  /// the scheduler; stable address for the scheduler's lifetime).
  const double* app_value = nullptr;
  /// Bumped whenever the values behind `app_value` change, so the
  /// controller knows to re-key and resort its queues.
  std::uint64_t key_version = 0;
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Called once when a request enters the controller (tag assignment).
  virtual void on_enqueue(MemRequest& req, Cycle now_cpu) {
    (void)req;
    (void)now_cpu;
  }

  /// Called when a request's column command issues (it leaves the queue).
  virtual void on_issue(const MemRequest& req) { (void)req; }

  /// Strict weak ordering: true if `a` should be served before `b`.
  /// `dram` exposes row-buffer state for row-hit-aware policies.
  virtual bool before(const MemRequest& a, const MemRequest& b,
                      const dram::DramSystem& dram) const = 0;

  /// The sort-key contract of this policy's before() ordering (see
  /// SchedOrdering). Must be consistent with before(): whenever a non-
  /// dynamic mode is advertised, sorting by (key, arrival_cpu, id) yields
  /// exactly the before() order. Default: dynamic.
  virtual SchedOrdering ordering() const { return {}; }

  /// Installs per-application bandwidth shares (share-based policies).
  virtual void set_shares(std::span<const double> beta) { (void)beta; }

  /// Installs a per-application priority rank, 0 = highest (priority-based
  /// policies).
  virtual void set_priority_ranks(std::span<const std::uint32_t> ranks) {
    (void)ranks;
  }

  /// Observability probe: spread between the most-ahead and most-behind
  /// application virtual clock of a fair-queueing policy (how far DSTF
  /// enforcement currently lets applications drift apart). Policies with no
  /// virtual-time notion report 0.
  virtual double virtual_time_lag() const { return 0.0; }

  /// Snapshot hooks: a policy serializes its mutable decision state plus
  /// its constructor knobs (so make_scheduler_by_name() can rebuild an
  /// identical instance and then overwrite it); stateless policies write
  /// nothing.
  virtual void save_state(snap::Writer& w) const { (void)w; }
  virtual void restore_state(snap::Reader& r) { (void)r; }

  virtual std::string name() const = 0;
};

/// Rebuilds a scheduler instance from Scheduler::name() during snapshot
/// restore; the caller then applies restore_state() to it. Returns nullptr
/// for an unknown name (the restore fails loudly on that).
std::unique_ptr<Scheduler> make_scheduler_by_name(std::string_view name,
                                                  std::size_t num_apps);

/// First-come-first-served across all applications; the paper's
/// No_partitioning baseline ("the memory controller serves all the memory
/// requests based on a FCFS policy").
class FcfsScheduler final : public Scheduler {
 public:
  bool before(const MemRequest& a, const MemRequest& b,
              const dram::DramSystem& dram) const override;
  /// Pure (arrival, id) order; tags stay at their zero default.
  SchedOrdering ordering() const override {
    return {SchedOrdering::Mode::kStatic, nullptr, 0};
  }
  std::string name() const override { return "FCFS"; }
};

/// First-ready FCFS (Rixner et al.): row hits first, then oldest-first.
/// Included as the classic utilization-oriented baseline. An optional
/// streak cap bounds how many consecutive row hits one bank may absorb
/// before oldest-first order reasserts itself (a common starvation
/// mitigation); 0 disables the cap.
class FrFcfsScheduler final : public Scheduler {
 public:
  explicit FrFcfsScheduler(std::uint32_t row_hit_streak_cap = 0);

  void on_issue(const MemRequest& req) override;
  bool before(const MemRequest& a, const MemRequest& b,
              const dram::DramSystem& dram) const override;
  void save_state(snap::Writer& w) const override;
  void restore_state(snap::Reader& r) override;
  std::string name() const override { return "FR-FCFS"; }

 private:
  bool hit_priority_allowed(const MemRequest& r,
                            const dram::DramSystem& dram) const;

  std::uint32_t streak_cap_;
  // Streak tracking: consecutive column accesses served from one
  // (rank, bank).
  std::uint32_t streak_ = 0;
  std::uint32_t last_rank_ = 0;
  std::uint32_t last_bank_ = 0;
  bool has_last_ = false;
};

/// Parallelism-Aware Batch Scheduling, simplified (Mutlu & Moscibroda,
/// ISCA'08): each application's k-th request is marked with batch number
/// floor(k / per_app_cap); lower batch numbers are served strictly first,
/// with row-hit-first/oldest-first inside a batch. A memory-hungry
/// application thus cycles through batch numbers quickly while a light
/// application's requests always land in a low batch — bounding how long
/// any application can be deferred, PAR-BS's core guarantee.
class BatchScheduler final : public Scheduler {
 public:
  explicit BatchScheduler(std::size_t num_apps, std::size_t per_app_cap = 5);

  void on_enqueue(MemRequest& req, Cycle now_cpu) override;
  bool before(const MemRequest& a, const MemRequest& b,
              const dram::DramSystem& dram) const override;
  void save_state(snap::Writer& w) const override;
  void restore_state(snap::Reader& r) override;
  std::string name() const override { return "PAR-BS"; }

 private:
  std::size_t per_app_cap_;
  std::vector<std::uint64_t> arrival_count_;  ///< per-app total arrivals
};

/// Modified DRAM Start-Time Fair queueing (paper Section IV-B).
///
/// Each application a has a virtual clock; its i-th request receives tag
/// S_i = S_{i-1} + 1/beta_a. Unlike the original DSTF, tags do not depend
/// on arrival time, so an application that under-used its share in the past
/// (small running tag) naturally catches up later — the modification the
/// paper introduces so low-intensity applications reach their shares.
/// Requests are served in increasing tag order. An optional row-hit window
/// lets a row-hitting request bypass a lower-tagged one whose tag is within
/// `row_hit_window` — the "combination" of partitioning and utilization
/// ordering described in Section II-A3.
class StartTimeFairScheduler final : public Scheduler {
 public:
  explicit StartTimeFairScheduler(std::size_t num_apps,
                                  double row_hit_window = 0.0);

  void on_enqueue(MemRequest& req, Cycle now_cpu) override;
  bool before(const MemRequest& a, const MemRequest& b,
              const dram::DramSystem& dram) const override;
  /// Tag order is frozen at enqueue; only the row-hit bypass window makes
  /// the comparison depend on live DRAM state.
  SchedOrdering ordering() const override {
    return {row_hit_window_ > 0.0 ? SchedOrdering::Mode::kDynamic
                                  : SchedOrdering::Mode::kStatic,
            nullptr, 0};
  }
  void set_shares(std::span<const double> beta) override;
  void save_state(snap::Writer& w) const override;
  void restore_state(snap::Reader& r) override;
  std::string name() const override { return "StartTimeFair"; }
  double virtual_time_lag() const override;

  /// The running virtual clock of one application (exposed for tests).
  double virtual_clock(AppId app) const;

 private:
  std::vector<double> next_tag_;
  std::vector<double> increment_;  // 1 / beta_a
  double row_hit_window_;
};

/// The *original* DRAM Start-Time Fair queueing of Rafique et al. (PACT'07)
/// for comparison with the paper's modification: tags are anchored to a
/// global virtual clock that advances with service, so an application that
/// stays idle forfeits the share it did not use (no catch-up):
///
///   S_i = max(V_now, F_{i-1}),   F_i = S_i + 1/beta_a
///
/// where V_now is the tag of the most recently served request. The paper
/// replaces this with the arrival-independent recurrence so low-intensity
/// applications can reclaim their share later (Section IV-B); the
/// difference is quantified in bench/ablation_enforcement.
class ClassicDstfScheduler final : public Scheduler {
 public:
  explicit ClassicDstfScheduler(std::size_t num_apps);

  void on_enqueue(MemRequest& req, Cycle now_cpu) override;
  void on_issue(const MemRequest& req) override;
  bool before(const MemRequest& a, const MemRequest& b,
              const dram::DramSystem& dram) const override;
  /// on_issue() moves the virtual clock, but that only shapes *future*
  /// tags; queued requests compare by their frozen tags alone.
  SchedOrdering ordering() const override {
    return {SchedOrdering::Mode::kStatic, nullptr, 0};
  }
  void set_shares(std::span<const double> beta) override;
  void save_state(snap::Writer& w) const override;
  void restore_state(snap::Reader& r) override;
  std::string name() const override { return "ClassicDSTF"; }
  double virtual_time_lag() const override;

  double virtual_time() const { return virtual_time_; }

 private:
  std::vector<double> last_finish_;
  std::vector<double> increment_;
  double virtual_time_ = 0.0;
};

/// Stall-Time Fair Memory scheduling (Mutlu & Moscibroda, MICRO'07),
/// reproduced as a related-work comparison point: when the estimated
/// slowdown imbalance max_i S_i / min_i S_i exceeds `alpha`, the most
/// slowed-down application's requests are prioritized; otherwise requests
/// fall back to row-hit-first/oldest-first ordering. Slowdown estimates
/// are fed externally (e.g. from the online profiler).
class StfmScheduler final : public Scheduler {
 public:
  explicit StfmScheduler(std::size_t num_apps, double alpha = 1.1);

  bool before(const MemRequest& a, const MemRequest& b,
              const dram::DramSystem& dram) const override;
  void save_state(snap::Writer& w) const override;
  void restore_state(snap::Reader& r) override;
  std::string name() const override { return "STFM"; }

  /// Installs the current estimated slowdown of each application
  /// (T_shared / T_alone; larger = more slowed down).
  void set_slowdowns(std::span<const double> slowdowns);

  /// True when the imbalance currently exceeds alpha (fairness mode).
  bool fairness_mode_active() const;

 private:
  std::vector<double> slowdown_;
  double alpha_;
};

/// ATLAS-style least-attained-service scheduling (Kim et al., HPCA'10):
/// applications are ranked by the service (column accesses) they attained
/// in the current long quantum; the least-served application's requests go
/// first, which naturally deprioritizes bandwidth hogs. The attained
/// counters decay at each quantum boundary so history ages out.
class AtlasScheduler final : public Scheduler {
 public:
  /// `quantum` is measured in served requests (a proxy for the 10M-cycle
  /// quantum of the original, which the scheduler cannot observe).
  explicit AtlasScheduler(std::size_t num_apps, std::uint64_t quantum = 2048,
                          double decay = 0.5);

  void on_issue(const MemRequest& req) override;
  bool before(const MemRequest& a, const MemRequest& b,
              const dram::DramSystem& dram) const override;
  void save_state(snap::Writer& w) const override;
  void restore_state(snap::Reader& r) override;
  std::string name() const override { return "ATLAS"; }

  double attained(AppId app) const;

 private:
  std::vector<double> attained_;
  std::uint64_t quantum_;
  double decay_;
  std::uint64_t served_in_quantum_ = 0;
};

/// Thread-Cluster-Memory-lite (Kim et al., MICRO'10): applications are
/// split into a latency-sensitive cluster (low memory intensity) that is
/// always prioritized, and a bandwidth-heavy cluster scheduled
/// least-attained-first among themselves (fairness inside the heavy
/// cluster). Cluster membership is installed externally from the profiled
/// APC_alone values.
class TcmScheduler final : public Scheduler {
 public:
  explicit TcmScheduler(std::size_t num_apps);

  /// Marks each application as latency-sensitive (true) or bandwidth-heavy
  /// (false).
  void set_clusters(std::span<const bool> latency_sensitive);
  void on_issue(const MemRequest& req) override;
  bool before(const MemRequest& a, const MemRequest& b,
              const dram::DramSystem& dram) const override;
  void save_state(snap::Writer& w) const override;
  void restore_state(snap::Reader& r) override;
  std::string name() const override { return "TCM"; }

 private:
  std::vector<bool> latency_cluster_;
  std::vector<double> attained_;
};

/// Strict priority by application rank (0 = most important); oldest-first
/// within a rank. With ranks sorted by ascending APC_alone this is the
/// paper's Priority_APC; sorted by ascending API it is Priority_API.
class StrictPriorityScheduler final : public Scheduler {
 public:
  explicit StrictPriorityScheduler(std::size_t num_apps);

  bool before(const MemRequest& a, const MemRequest& b,
              const dram::DramSystem& dram) const override;
  /// Per-app rank as the primary key; re-ranking bumps the key version so
  /// controllers re-key their queues.
  SchedOrdering ordering() const override {
    return {SchedOrdering::Mode::kAppValue, rank_key_.data(), key_version_};
  }
  void set_priority_ranks(std::span<const std::uint32_t> ranks) override;
  void save_state(snap::Writer& w) const override;
  void restore_state(snap::Reader& r) override;
  std::string name() const override { return "StrictPriority"; }

 private:
  std::vector<std::uint32_t> rank_;
  /// rank_ mirrored as doubles (u32 ranks are exactly representable), the
  /// ordering() key array.
  std::vector<double> rank_key_;
  std::uint64_t key_version_ = 0;
};

}  // namespace bwpart::mem
