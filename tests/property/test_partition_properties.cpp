// Closed-form partitioning properties under randomized workloads: share
// normalization for every scheme, Eq. 2 conservation of the analytic
// allocation, sqrt-rule optimality against perturbed feasible neighbors,
// and negative tests proving the invariant checkers catch seeded
// violations (a beta sum off by 1e-3, a cap-busting allocation).
#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "common/pbt.hpp"
#include "core/metrics.hpp"
#include "core/partition.hpp"
#include "harness/generators.hpp"
#include "mem/scheduler.hpp"

namespace bwpart {
namespace {

using core::AppParams;
using core::Scheme;

struct PartitionCase {
  std::vector<AppParams> apps;
  double b = 0.0;
  Scheme scheme = Scheme::NoPartitioning;
};

pbt::GenFn<PartitionCase> partition_case_gen() {
  return [](Rng& rng) {
    PartitionCase c;
    c.apps = harness::gen::workload(rng, 2, 8);
    c.b = harness::gen::bandwidth(rng, c.apps);
    c.scheme = harness::gen::scheme(rng);
    return c;
  };
}

std::string print_case(const PartitionCase& c) {
  std::ostringstream os;
  os << "scheme=" << core::to_string(c.scheme) << " B=" << c.b << " apps={";
  for (const AppParams& a : c.apps) {
    os << "(apc=" << a.apc_alone << ",api=" << a.api << ")";
  }
  os << "}";
  return os.str();
}

double sum(std::span<const double> v) {
  return std::accumulate(v.begin(), v.end(), 0.0);
}

TEST(PartitionProperties, SharesAreNormalizedForEveryScheme) {
  const pbt::Result r = pbt::for_all<PartitionCase>(
      "shares-normalized", partition_case_gen(),
      [](const PartitionCase& c) -> std::string {
        for (const Scheme s : core::kAllSchemes) {
          const std::vector<double> beta =
              core::compute_shares(s, c.apps, c.b);
          if (beta.size() != c.apps.size()) return "beta size mismatch";
          for (const double x : beta) {
            if (!(x >= 0.0)) return "negative share under " + to_string(s);
          }
          if (std::abs(sum(beta) - 1.0) > check::kShareSumTol) {
            return "share sum != 1 under " + to_string(s);
          }
        }
        return {};
      },
      {}, nullptr, print_case);
  EXPECT_TRUE(r.ok) << r.report();
  EXPECT_GE(r.cases_run, 200);
}

TEST(PartitionProperties, AllocationConservesBandwidthAndRespectsCaps) {
  // Eq. 2 for the analytic allocation of every scheme: allocations are
  // nonnegative, never exceed APC_alone, and sum to min(B, sum APC_alone).
  const pbt::Result r = pbt::for_all<PartitionCase>(
      "allocation-eq2", partition_case_gen(),
      [](const PartitionCase& c) -> std::string {
        const std::vector<double> caps = core::apc_alone_of(c.apps);
        const double expect_total = std::min(c.b, sum(caps));
        const double tol = 1e-9 * std::max(1.0, expect_total);
        for (const Scheme s : core::kAllSchemes) {
          const std::vector<double> alloc =
              core::analytic_allocation(s, c.apps, c.b);
          for (std::size_t i = 0; i < alloc.size(); ++i) {
            if (alloc[i] < -tol) return "negative allocation";
            if (alloc[i] > caps[i] + tol) return "allocation exceeds cap";
          }
          if (std::abs(sum(alloc) - expect_total) > tol) {
            return "allocation sum != min(B, sum caps) under " + to_string(s);
          }
        }
        return {};
      },
      {}, nullptr, print_case);
  EXPECT_TRUE(r.ok) << r.report();
  EXPECT_GE(r.cases_run, 200);
}

TEST(PartitionProperties, SqrtRuleBeatsPerturbedNeighborsOnHsp) {
  // Section III-B: the sqrt allocation maximizes Hsp over the feasible set
  // {sum alloc = min(B, sum caps), 0 <= alloc_i <= cap_i}. Move mass
  // between random app pairs (staying feasible) and verify Hsp never
  // improves beyond numerical noise.
  const pbt::Result r = pbt::for_all<PartitionCase>(
      "sqrt-hsp-optimal", partition_case_gen(),
      [](const PartitionCase& c) -> std::string {
        const std::vector<double> caps = core::apc_alone_of(c.apps);
        const std::vector<double> alloc =
            core::analytic_allocation(Scheme::SquareRoot, c.apps, c.b);
        std::vector<double> ipc_alone(c.apps.size()), ipc_shared(alloc.size());
        for (std::size_t i = 0; i < c.apps.size(); ++i) {
          ipc_alone[i] = c.apps[i].ipc_alone();
          ipc_shared[i] = c.apps[i].ipc_at(alloc[i]);
        }
        const double best =
            core::harmonic_weighted_speedup(ipc_shared, ipc_alone);

        Rng perturb_rng(42);  // fixed inner seed; outer randomness suffices
        for (int t = 0; t < 32; ++t) {
          const std::size_t i = static_cast<std::size_t>(
              pbt::gen_uint(perturb_rng, 0, c.apps.size() - 1));
          std::size_t j = static_cast<std::size_t>(
              pbt::gen_uint(perturb_rng, 0, c.apps.size() - 2));
          if (j >= i) ++j;
          const double room = std::min(alloc[i], caps[j] - alloc[j]);
          if (room <= 0.0) continue;
          const double delta =
              room * pbt::gen_double(perturb_rng, 0.01, 0.99);
          std::vector<double> moved = alloc;
          moved[i] -= delta;
          moved[j] += delta;
          if (moved[i] <= 0.0) continue;  // Hsp undefined at zero bandwidth
          std::vector<double> ipc(moved.size());
          for (std::size_t k = 0; k < moved.size(); ++k) {
            ipc[k] = c.apps[k].ipc_at(moved[k]);
          }
          const double perturbed =
              core::harmonic_weighted_speedup(ipc, ipc_alone);
          if (perturbed > best * (1.0 + 1e-9)) {
            std::ostringstream os;
            os << "perturbation (" << i << "->" << j << ", delta=" << delta
               << ") improved Hsp " << best << " -> " << perturbed;
            return os.str();
          }
        }
        return {};
      },
      {}, nullptr, print_case);
  EXPECT_TRUE(r.ok) << r.report();
  EXPECT_GE(r.cases_run, 200);
}

TEST(PartitionProperties, ProportionalEqualizesSpeedupsUnderContention) {
  // Section III-C: beta_i ~ APC_alone_i gives every app the same speedup
  // APC_shared_i / APC_alone_i = B / sum APC_alone whenever B fits under
  // the total demand (no cap binds).
  const pbt::Result r = pbt::for_all<PartitionCase>(
      "proportional-equal-speedups", partition_case_gen(),
      [](const PartitionCase& c) -> std::string {
        const std::vector<double> caps = core::apc_alone_of(c.apps);
        const double total = sum(caps);
        const double b = std::min(c.b, total);  // clamp to contended regime
        const std::vector<double> alloc =
            core::analytic_allocation(Scheme::Proportional, c.apps, b);
        const double expect = b / total;
        for (std::size_t i = 0; i < alloc.size(); ++i) {
          const double speedup = alloc[i] / caps[i];
          if (std::abs(speedup - expect) > 1e-9) {
            std::ostringstream os;
            os << "app " << i << " speedup " << speedup << " != " << expect;
            return os.str();
          }
        }
        return {};
      },
      {}, nullptr, print_case);
  EXPECT_TRUE(r.ok) << r.report();
  EXPECT_GE(r.cases_run, 200);
}

TEST(PartitionProperties, KnapsackServesRanksAsCapPrefix) {
  // Sections III-D/E: in rank order the knapsack allocation is full caps,
  // then at most one partial app, then zeros.
  const pbt::Result r = pbt::for_all<PartitionCase>(
      "knapsack-prefix", partition_case_gen(),
      [](const PartitionCase& c) -> std::string {
        const std::vector<double> caps = core::apc_alone_of(c.apps);
        for (const Scheme s : {Scheme::PriorityApc, Scheme::PriorityApi}) {
          const std::vector<std::uint32_t> ranks =
              core::priority_ranks(s, c.apps);
          const std::vector<double> alloc =
              core::knapsack_allocate(caps, ranks, c.b);
          // Order app indices by rank (0 served first).
          std::vector<std::size_t> order(c.apps.size());
          std::iota(order.begin(), order.end(), std::size_t{0});
          std::sort(order.begin(), order.end(),
                    [&ranks](std::size_t x, std::size_t y) {
                      return ranks[x] < ranks[y];
                    });
          // full -> (partial)? -> zero, scanning in service order
          int state = 0;  // 0 = full prefix, 1 = seen partial, 2 = zeros
          for (const std::size_t i : order) {
            const double tol = 1e-12 * std::max(1.0, caps[i]);
            const bool full = std::abs(alloc[i] - caps[i]) <= tol;
            const bool zero = alloc[i] <= tol;
            if (state == 0) {
              if (full) continue;
              state = zero ? 2 : 1;
            } else if (state == 1) {
              state = 2;
              if (!zero) return "second partial allocation after partial";
            } else if (!zero) {
              return "nonzero allocation after budget exhausted";
            }
          }
        }
        return {};
      },
      {}, nullptr, print_case);
  EXPECT_TRUE(r.ok) << r.report();
  EXPECT_GE(r.cases_run, 200);
}

// ---------------------------------------------------------------------------
// Negative tests: deliberately seeded violations must be caught.

TEST(PartitionNegative, BetaSumOffByOneThousandthIsCaught) {
  // Exercises the BWPART_CHECK_RUN call site inside the scheduler, which
  // is compiled out entirely with -DBWPART_CHECK=OFF.
  if constexpr (!check::kEnabled) {
    GTEST_SKIP() << "BWPART_CHECK is compiled out";
  }
  check::Recorder rec;
  mem::StartTimeFairScheduler sched(2);
  const std::vector<double> bad = {0.5, 0.499};  // sums to 0.999
  sched.set_shares(bad);
  EXPECT_TRUE(rec.caught("share")) << "recorded " << rec.count()
                                   << " violations";
  EXPECT_GE(rec.count(), 1u);
}

TEST(PartitionNegative, NegativeShareIsCaught) {
  check::Recorder rec;
  const std::vector<double> bad = {1.2, -0.2};
  check::share_vector(bad, "test");
  EXPECT_TRUE(rec.caught("share"));
}

TEST(PartitionNegative, CapBustingAllocationIsCaught) {
  check::Recorder rec;
  const std::vector<double> caps = {0.05, 0.02};
  const std::vector<double> alloc = {0.06, 0.01};  // sums right, busts cap 0
  check::allocation(alloc, caps, 0.07, 1e-9, "test");
  EXPECT_GE(rec.count(), 1u);
}

TEST(PartitionNegative, LeakyAccountingIsCaught) {
  check::Recorder rec;
  const std::vector<double> per_app = {0.03, 0.04};
  check::bandwidth_accounting(per_app, 0.08, "test");  // 0.07 != 0.08
  EXPECT_GE(rec.count(), 1u);
}

TEST(PartitionNegative, RecorderRestoresPreviousHandler) {
  // Nested scopes must not leak the recording handler.
  {
    check::Recorder rec;
    check::report("scoped violation", __FILE__, __LINE__);
    EXPECT_EQ(rec.count(), 1u);
    rec.clear();
    EXPECT_EQ(rec.count(), 0u);
  }
  // After scope exit a fresh Recorder starts empty and still records.
  check::Recorder rec2;
  check::share_vector(std::vector<double>{0.9, 0.2}, "test2");
  EXPECT_TRUE(rec2.caught("test2"));
}

}  // namespace
}  // namespace bwpart
