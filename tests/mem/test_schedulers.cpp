#include "mem/scheduler.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>

#include "dram/dram_system.hpp"

namespace bwpart::mem {
namespace {

dram::DramSystem make_dram() {
  dram::DramConfig cfg = dram::DramConfig::ddr2_400();
  cfg.enable_refresh = false;
  return dram::DramSystem(cfg);
}

MemRequest req(std::uint64_t id, AppId app, Cycle arrival) {
  MemRequest r;
  r.id = id;
  r.app = app;
  r.arrival_cpu = arrival;
  return r;
}

TEST(FcfsScheduler, OrdersByArrival) {
  auto d = make_dram();
  FcfsScheduler s;
  const MemRequest a = req(0, 0, 10);
  const MemRequest b = req(1, 1, 5);
  EXPECT_TRUE(s.before(b, a, d));
  EXPECT_FALSE(s.before(a, b, d));
}

TEST(FcfsScheduler, TiesBrokenById) {
  auto d = make_dram();
  FcfsScheduler s;
  const MemRequest a = req(0, 0, 10);
  const MemRequest b = req(1, 1, 10);
  EXPECT_TRUE(s.before(a, b, d));
  EXPECT_FALSE(s.before(b, a, d));
}

TEST(FrFcfsScheduler, RowHitBeatsOlderMiss) {
  auto d = make_dram();
  // Open a row so one request is a row hit.
  const dram::Location open_loc{0, 0, 0, 7, 0};
  dram::Tick now = 0;
  d.tick(now);
  ASSERT_TRUE(d.can_issue({dram::CommandType::Activate, open_loc, 0, 0}, now));
  d.issue({dram::CommandType::Activate, open_loc, 0, 0}, now);

  FrFcfsScheduler s;
  MemRequest hit = req(0, 0, 100);  // newer but row hit
  hit.loc = open_loc;
  MemRequest miss = req(1, 1, 5);  // older, different row
  miss.loc = open_loc;
  miss.loc.row = 8;
  EXPECT_TRUE(s.before(hit, miss, d));
}

TEST(FrFcfsScheduler, FallsBackToArrivalAmongMisses) {
  auto d = make_dram();
  FrFcfsScheduler s;
  MemRequest a = req(0, 0, 10);
  MemRequest b = req(1, 1, 5);
  EXPECT_TRUE(s.before(b, a, d));
}

TEST(StartTimeFair, TagsFollowPaperRecurrence) {
  // Section IV-B: S_i = S_{i-1} + 1/beta.
  StartTimeFairScheduler s(2);
  const std::array<double, 2> beta{0.25, 0.75};
  s.set_shares(beta);
  MemRequest r0 = req(0, 0, 0);
  MemRequest r1 = req(1, 0, 0);
  MemRequest q0 = req(2, 1, 0);
  s.on_enqueue(r0, 0);
  s.on_enqueue(r1, 0);
  s.on_enqueue(q0, 0);
  EXPECT_DOUBLE_EQ(r0.start_tag, 0.0);
  EXPECT_DOUBLE_EQ(r1.start_tag, 4.0);   // 1/0.25
  EXPECT_DOUBLE_EQ(q0.start_tag, 0.0);
  EXPECT_DOUBLE_EQ(s.virtual_clock(0), 8.0);
  EXPECT_NEAR(s.virtual_clock(1), 4.0 / 3.0, 1e-12);
}

TEST(StartTimeFair, TagIndependentOfArrivalTime) {
  // The paper's modification: tags do not reference wall-clock arrival, so
  // an app idle for a long time keeps its low tag and catches up.
  StartTimeFairScheduler s(2);
  const std::array<double, 2> beta{0.5, 0.5};
  s.set_shares(beta);
  MemRequest early = req(0, 0, 0);
  s.on_enqueue(early, 0);
  MemRequest late = req(1, 1, 1'000'000);  // app 1 was idle a million cycles
  s.on_enqueue(late, 1'000'000);
  EXPECT_DOUBLE_EQ(late.start_tag, 0.0);
}

TEST(StartTimeFair, ServesInTagOrder) {
  auto d = make_dram();
  StartTimeFairScheduler s(2);
  const std::array<double, 2> beta{0.2, 0.8};
  s.set_shares(beta);
  // App 0's second request has tag 5; app 1's fourth has tag 3.75.
  MemRequest a = req(0, 0, 0);
  a.start_tag = 5.0;
  MemRequest b = req(1, 1, 50);
  b.start_tag = 3.75;
  EXPECT_TRUE(s.before(b, a, d));
}

TEST(StartTimeFair, HigherShareMeansMoreRequestsPerVirtualTime) {
  StartTimeFairScheduler s(2);
  const std::array<double, 2> beta{0.25, 0.75};
  s.set_shares(beta);
  // Within virtual time 12, app 0 fits 3 requests and app 1 fits 9.
  int served0 = 0, served1 = 0;
  for (int i = 0; i < 20; ++i) {
    MemRequest r = req(static_cast<std::uint64_t>(i), 0, 0);
    s.on_enqueue(r, 0);
    if (r.start_tag < 12.0) ++served0;
  }
  for (int i = 0; i < 20; ++i) {
    MemRequest r = req(static_cast<std::uint64_t>(100 + i), 1, 0);
    s.on_enqueue(r, 0);
    if (r.start_tag < 12.0) ++served1;
  }
  EXPECT_EQ(served0, 3);
  EXPECT_EQ(served1, 9);
}

TEST(StartTimeFair, ZeroShareIsClampedNotStarving) {
  StartTimeFairScheduler s(2);
  const std::array<double, 2> beta{0.0, 1.0};
  s.set_shares(beta);
  MemRequest r = req(0, 0, 0);
  s.on_enqueue(r, 0);
  MemRequest r2 = req(1, 0, 0);
  s.on_enqueue(r2, 0);
  EXPECT_TRUE(std::isfinite(r2.start_tag));
  EXPECT_GT(r2.start_tag, 0.0);
}

TEST(StartTimeFair, RowHitWindowBoundsPriorityInversion) {
  auto d = make_dram();
  const dram::Location open_loc{0, 0, 0, 7, 0};
  dram::Tick now = 0;
  d.tick(now);
  d.issue({dram::CommandType::Activate, open_loc, 0, 0}, now);

  StartTimeFairScheduler s(2, /*row_hit_window=*/4.0);
  MemRequest hit = req(0, 0, 0);
  hit.loc = open_loc;
  hit.start_tag = 3.0;
  MemRequest miss = req(1, 1, 0);
  miss.loc = open_loc;
  miss.loc.row = 9;
  miss.start_tag = 1.0;
  // Tag gap 2 < window 4: the row hit bypasses.
  EXPECT_TRUE(s.before(hit, miss, d));
  // Tag gap beyond the window: tag order prevails.
  hit.start_tag = 9.0;
  EXPECT_FALSE(s.before(hit, miss, d));
  EXPECT_TRUE(s.before(miss, hit, d));
}

TEST(StrictPriority, RanksDominateArrival) {
  auto d = make_dram();
  StrictPriorityScheduler s(3);
  const std::array<std::uint32_t, 3> ranks{2, 0, 1};
  s.set_priority_ranks(ranks);
  MemRequest a = req(0, 0, 0);    // rank 2, oldest
  MemRequest b = req(1, 1, 500);  // rank 0, newest
  MemRequest c = req(2, 2, 100);  // rank 1
  EXPECT_TRUE(s.before(b, a, d));
  EXPECT_TRUE(s.before(b, c, d));
  EXPECT_TRUE(s.before(c, a, d));
}

TEST(StrictPriority, ArrivalBreaksTiesWithinRank) {
  auto d = make_dram();
  StrictPriorityScheduler s(2);
  const std::array<std::uint32_t, 2> ranks{0, 0};
  s.set_priority_ranks(ranks);
  MemRequest a = req(0, 0, 10);
  MemRequest b = req(1, 1, 5);
  EXPECT_TRUE(s.before(b, a, d));
}

TEST(AllSchedulers, BeforeIsAsymmetric) {
  auto d = make_dram();
  FcfsScheduler fcfs;
  FrFcfsScheduler fr;
  StartTimeFairScheduler stf(2);
  StrictPriorityScheduler sp(2);
  MemRequest a = req(0, 0, 10);
  a.start_tag = 1.0;
  MemRequest b = req(1, 1, 20);
  b.start_tag = 2.0;
  for (Scheduler* s :
       std::initializer_list<Scheduler*>{&fcfs, &fr, &stf, &sp}) {
    EXPECT_FALSE(s->before(a, b, d) && s->before(b, a, d)) << s->name();
    EXPECT_FALSE(s->before(a, a, d)) << s->name();
  }
}

}  // namespace
}  // namespace bwpart::mem
