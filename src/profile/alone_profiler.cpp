#include "profile/alone_profiler.hpp"

#include <algorithm>
#include <string>

#include "common/assert.hpp"

namespace bwpart::profile {

core::AppParams estimate_alone(const AppCounters& delta, Cycle shared_cycles) {
  BWPART_ASSERT(shared_cycles > 0, "estimate over empty window");
  core::AppParams p;
  // Interference cannot exceed the window; clamp against accounting noise
  // and keep at least one cycle so the estimate stays finite.
  const Cycle interference =
      std::min(delta.interference_cycles, shared_cycles - 1);
  const Cycle alone_cycles = shared_cycles - interference;
  p.apc_alone = static_cast<double>(delta.accesses) /
                static_cast<double>(alone_cycles);
  p.api = delta.instructions == 0
              ? 0.0
              : static_cast<double>(delta.accesses) /
                    static_cast<double>(delta.instructions);
  return p;
}

RollingProfiler::RollingProfiler(std::uint32_t num_apps, Cycle period,
                                 double smoothing)
    : period_(period),
      smoothing_(smoothing),
      next_boundary_(period),
      last_(num_apps),
      estimate_(num_apps) {
  BWPART_ASSERT(num_apps > 0, "need at least one app");
  BWPART_ASSERT(period > 0, "period must be positive");
  BWPART_ASSERT(smoothing > 0.0 && smoothing <= 1.0,
                "smoothing must be in (0, 1]");
}

std::optional<std::vector<core::AppParams>> RollingProfiler::update(
    Cycle now, std::span<const AppCounters> cumulative) {
  BWPART_ASSERT(cumulative.size() == last_.size(), "counter arity mismatch");
  BWPART_ASSERT(now >= last_cycle_, "time went backwards");
  if (now < next_boundary_) return std::nullopt;
  const Cycle window = now - last_cycle_;
  for (std::size_t i = 0; i < last_.size(); ++i) {
    AppCounters delta;
    BWPART_ASSERT(cumulative[i].accesses >= last_[i].accesses &&
                      cumulative[i].instructions >= last_[i].instructions &&
                      cumulative[i].interference_cycles >=
                          last_[i].interference_cycles,
                  "cumulative counters must be monotone");
    delta.accesses = cumulative[i].accesses - last_[i].accesses;
    delta.instructions = cumulative[i].instructions - last_[i].instructions;
    delta.interference_cycles =
        cumulative[i].interference_cycles - last_[i].interference_cycles;
    const core::AppParams fresh = estimate_alone(delta, window);
    if (!has_estimate_) {
      estimate_[i] = fresh;
    } else {
      estimate_[i].apc_alone = smoothing_ * fresh.apc_alone +
                               (1.0 - smoothing_) * estimate_[i].apc_alone;
      estimate_[i].api =
          smoothing_ * fresh.api + (1.0 - smoothing_) * estimate_[i].api;
    }
    last_[i] = cumulative[i];
  }
  has_estimate_ = true;
  last_cycle_ = now;
  while (next_boundary_ <= now) next_boundary_ += period_;
  if constexpr (obs::kEnabled) {
    if (obs_ != nullptr && obs_->enabled()) {
      obs_->trace().instant("reprofile", obs::TraceEmitter::kSystemTrack, now);
      obs_->metrics().counter("profile.reprofiles").add();
      for (std::size_t i = 0; i < estimate_.size(); ++i) {
        const std::string app = "profile.app" + std::to_string(i);
        obs_->metrics().gauge(app + ".apc_alone_est").set(estimate_[i].apc_alone);
        obs_->metrics().gauge(app + ".api_est").set(estimate_[i].api);
      }
    }
  }
  return estimate_;
}

void RollingProfiler::set_observability(obs::Hub* hub) {
  if constexpr (!obs::kEnabled) {
    (void)hub;
    return;
  }
  obs_ = hub;
}

}  // namespace bwpart::profile
