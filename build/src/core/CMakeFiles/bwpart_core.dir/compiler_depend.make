# Empty compiler generated dependencies file for bwpart_core.
# This may be replaced when dependencies are built.
