#include "core/partition.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/assert.hpp"
#include "common/check.hpp"

namespace bwpart::core {

std::string to_string(Scheme s) {
  switch (s) {
    case Scheme::NoPartitioning: return "No_partitioning";
    case Scheme::Equal: return "Equal";
    case Scheme::Proportional: return "Proportional";
    case Scheme::SquareRoot: return "Square_root";
    case Scheme::TwoThirdsPower: return "2/3_power";
    case Scheme::PriorityApc: return "Priority_APC";
    case Scheme::PriorityApi: return "Priority_API";
  }
  return "?";
}

namespace {

std::vector<double> normalized(std::vector<double> w) {
  const double sum = std::accumulate(w.begin(), w.end(), 0.0);
  BWPART_ASSERT(sum > 0.0, "weights must have positive sum");
  for (double& x : w) x /= sum;
  return w;
}

std::vector<double> scheme_weights(Scheme s, std::span<const AppParams> apps) {
  std::vector<double> w;
  w.reserve(apps.size());
  for (const AppParams& a : apps) {
    BWPART_ASSERT(a.apc_alone > 0.0, "APC_alone must be positive");
    switch (s) {
      case Scheme::Equal:
        w.push_back(1.0);
        break;
      case Scheme::Proportional:
      case Scheme::NoPartitioning:  // demand-proportional approximation
        w.push_back(a.apc_alone);
        break;
      case Scheme::SquareRoot:
        w.push_back(std::sqrt(a.apc_alone));
        break;
      case Scheme::TwoThirdsPower:
        w.push_back(std::pow(a.apc_alone, 2.0 / 3.0));
        break;
      case Scheme::PriorityApc:
      case Scheme::PriorityApi:
        BWPART_ASSERT(false, "priority schemes have no weight vector");
        break;
    }
  }
  return w;
}

}  // namespace

std::vector<std::uint32_t> priority_ranks(Scheme s,
                                          std::span<const AppParams> apps) {
  BWPART_ASSERT(is_priority_scheme(s), "ranks only for priority schemes");
  std::vector<std::uint32_t> order(apps.size());
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     const double ka = s == Scheme::PriorityApc
                                           ? apps[a].apc_alone
                                           : apps[a].api;
                     const double kb = s == Scheme::PriorityApc
                                           ? apps[b].apc_alone
                                           : apps[b].api;
                     return ka < kb;
                   });
  // order[r] = app with rank r; invert to rank-per-app.
  std::vector<std::uint32_t> rank(apps.size());
  for (std::uint32_t r = 0; r < order.size(); ++r) rank[order[r]] = r;
  return rank;
}

std::vector<double> knapsack_allocate(std::span<const double> caps,
                                      std::span<const std::uint32_t> ranks,
                                      double b) {
  BWPART_ASSERT(caps.size() == ranks.size(), "caps/ranks arity mismatch");
  BWPART_ASSERT(b >= 0.0, "negative budget");
  // Invert ranks back into serving order.
  std::vector<std::uint32_t> order(caps.size());
  for (std::uint32_t i = 0; i < caps.size(); ++i) {
    BWPART_ASSERT(ranks[i] < caps.size(), "rank out of range");
    order[ranks[i]] = i;
  }
  std::vector<double> alloc(caps.size(), 0.0);
  double remaining = b;
  for (std::uint32_t idx : order) {
    const double take = std::min(caps[idx], remaining);
    alloc[idx] = take;
    remaining -= take;
    if (remaining <= 0.0) break;
  }
  return alloc;
}

std::vector<double> waterfill(std::span<const double> weights,
                              std::span<const double> caps, double b) {
  BWPART_ASSERT(weights.size() == caps.size(), "weights/caps arity mismatch");
  BWPART_ASSERT(b >= 0.0, "negative budget");
  const std::size_t n = weights.size();
  std::vector<double> alloc(n, 0.0);
  std::vector<bool> capped(n, false);
  double remaining = b;
  // Each pass distributes the remaining budget proportionally among the
  // uncapped apps; apps hitting their cap are frozen and the surplus
  // redistributed. Terminates in at most n passes.
  for (std::size_t pass = 0; pass < n && remaining > 1e-15; ++pass) {
    double active_weight = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (!capped[i]) active_weight += weights[i];
    }
    if (active_weight <= 0.0) break;
    bool newly_capped = false;
    const double budget = remaining;
    for (std::size_t i = 0; i < n; ++i) {
      if (capped[i]) continue;
      const double offer = budget * weights[i] / active_weight;
      const double headroom = caps[i] - alloc[i];
      if (offer >= headroom) {
        alloc[i] = caps[i];
        remaining -= headroom;
        capped[i] = true;
        newly_capped = true;
      }
    }
    if (!newly_capped) {
      // Nobody capped: hand out the proportional offers and finish.
      for (std::size_t i = 0; i < n; ++i) {
        if (capped[i]) continue;
        alloc[i] += budget * weights[i] / active_weight;
        remaining -= budget * weights[i] / active_weight;
      }
      break;
    }
  }
  return alloc;
}

std::vector<double> compute_shares(Scheme s, std::span<const AppParams> apps,
                                   double b) {
  BWPART_ASSERT(!apps.empty(), "empty workload");
  if (is_priority_scheme(s)) {
    BWPART_ASSERT(b > 0.0, "priority shares need the bandwidth budget");
    const std::vector<double> alloc = analytic_allocation(s, apps, b);
    const double sum = std::accumulate(alloc.begin(), alloc.end(), 0.0);
    BWPART_ASSERT(sum > 0.0, "knapsack allocated nothing");
    std::vector<double> beta(alloc.size());
    for (std::size_t i = 0; i < alloc.size(); ++i) beta[i] = alloc[i] / sum;
    BWPART_CHECK_RUN(check::share_vector(beta, "compute_shares(priority)"));
    return beta;
  }
  std::vector<double> beta = normalized(scheme_weights(s, apps));
  BWPART_CHECK_RUN(check::share_vector(beta, "compute_shares"));
  return beta;
}

std::vector<double> analytic_allocation(Scheme s,
                                        std::span<const AppParams> apps,
                                        double b) {
  BWPART_ASSERT(!apps.empty(), "empty workload");
  BWPART_ASSERT(b > 0.0, "bandwidth must be positive");
  std::vector<double> caps;
  caps.reserve(apps.size());
  for (const AppParams& a : apps) caps.push_back(a.apc_alone);
  std::vector<double> alloc;
  if (is_priority_scheme(s)) {
    const std::vector<std::uint32_t> ranks = priority_ranks(s, apps);
    alloc = knapsack_allocate(caps, ranks, b);
  } else {
    const std::vector<double> w = scheme_weights(s, apps);
    alloc = waterfill(w, caps, b);
  }
  BWPART_CHECK_RUN(check::allocation(alloc, caps, b,
                                     1e-9 * std::max(1.0, b),
                                     "analytic_allocation"));
  return alloc;
}

}  // namespace bwpart::core
