// QoS-guaranteed partitioning (Section III-G) under randomized workloads:
// feasibility is exactly the budget test, reservations are honoured to the
// last bit, the best-effort group conserves the remainder (Eq. 2 on the
// sub-workload), and shares stay normalized.
#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "common/pbt.hpp"
#include "core/qos.hpp"
#include "harness/generators.hpp"

namespace bwpart::core {
namespace {

struct QosCase {
  std::vector<AppParams> apps;
  std::vector<QosRequirement> reqs;
  double b = 0.0;
  Scheme be_scheme = Scheme::SquareRoot;
};

pbt::GenFn<QosCase> qos_case_gen() {
  return [](Rng& rng) {
    QosCase c;
    c.apps = harness::gen::workload(rng, 2, 8);
    c.b = harness::gen::bandwidth(rng, c.apps);
    c.be_scheme = harness::gen::scheme(rng);
    // Guarantee a random subset (possibly every app); targets are a random
    // fraction of IPC_alone, so each reservation is per-app reachable.
    const std::size_t k = static_cast<std::size_t>(
        pbt::gen_uint(rng, 1, c.apps.size()));
    std::vector<std::uint32_t> idx(c.apps.size());
    std::iota(idx.begin(), idx.end(), 0u);
    for (std::size_t i = 0; i < k; ++i) {
      const std::size_t j =
          i + static_cast<std::size_t>(rng.next_below(idx.size() - i));
      std::swap(idx[i], idx[j]);
      const double frac = pbt::gen_double(rng, 0.05, 0.95);
      c.reqs.push_back(
          QosRequirement{idx[i], frac * c.apps[idx[i]].ipc_alone()});
    }
    return c;
  };
}

std::string print_qos_case(const QosCase& c) {
  std::ostringstream os;
  os << "B=" << c.b << " be=" << to_string(c.be_scheme) << " apps={";
  for (const AppParams& a : c.apps) {
    os << "(" << a.apc_alone << "," << a.api << ")";
  }
  os << "} reqs={";
  for (const QosRequirement& r : c.reqs) {
    os << "(" << r.app_index << "@" << r.ipc_target << ")";
  }
  os << "}";
  return os.str();
}

TEST(QosProperties, PlanHonoursReservationsAndConservesBandwidth) {
  const pbt::Result r = pbt::for_all<QosCase>(
      "qos-plan", qos_case_gen(),
      [](const QosCase& c) -> std::string {
        // Independent feasibility prediction, accumulated in request order
        // exactly as qos_allocate does.
        double b_qos = 0.0;
        for (const QosRequirement& req : c.reqs) {
          b_qos += req.ipc_target * c.apps[req.app_index].api;
        }
        const QosPlan plan = qos_allocate(c.apps, c.reqs, c.b, c.be_scheme);
        if (plan.feasible != (b_qos <= c.b)) {
          return plan.feasible ? "feasible despite over-committed budget"
                               : "infeasible despite fitting budget";
        }
        if (!plan.feasible) return {};

        if (std::abs(plan.b_qos - b_qos) > 1e-12 * std::max(1.0, b_qos)) {
          return "b_qos differs from the sum of reservations";
        }
        std::vector<bool> is_qos(c.apps.size(), false);
        double be_caps = 0.0;
        for (const QosRequirement& req : c.reqs) {
          is_qos[req.app_index] = true;
          const double reserve = req.ipc_target * c.apps[req.app_index].api;
          const double got = plan.apc_shared[req.app_index];
          if (std::abs(got - reserve) > 1e-12 * std::max(1.0, reserve)) {
            std::ostringstream os;
            os << "app " << req.app_index << " reserved " << reserve
               << " but got " << got;
            return os.str();
          }
        }
        for (std::size_t i = 0; i < c.apps.size(); ++i) {
          if (!is_qos[i]) be_caps += c.apps[i].apc_alone;
        }
        // Eq. 2 on the whole plan: QoS reservations plus the best-effort
        // group's min(remainder, its demand).
        const double expect_total =
            plan.b_qos + std::min(plan.b_best_effort, be_caps);
        const double total = std::accumulate(
            plan.apc_shared.begin(), plan.apc_shared.end(), 0.0);
        if (std::abs(total - expect_total) >
            1e-9 * std::max(1.0, expect_total)) {
          return "plan total != b_qos + min(b_best_effort, be demand)";
        }
        const double beta_sum =
            std::accumulate(plan.beta.begin(), plan.beta.end(), 0.0);
        if (std::abs(beta_sum - 1.0) > check::kShareSumTol) {
          return "beta does not sum to 1";
        }
        for (const double x : plan.beta) {
          if (!(x >= 0.0)) return "negative beta";
        }
        return {};
      },
      {}, nullptr, print_qos_case);
  EXPECT_TRUE(r.ok) << r.report();
  EXPECT_GE(r.cases_run, 200);
}

TEST(QosProperties, UnreachableTargetsAreAlwaysInfeasible) {
  const pbt::Result r = pbt::for_all<QosCase>(
      "qos-unreachable", qos_case_gen(),
      [](const QosCase& c) -> std::string {
        // Overshoot one app's standalone IPC: no budget can make this
        // feasible (the app cannot consume that much bandwidth).
        std::vector<QosRequirement> reqs = c.reqs;
        reqs.front().ipc_target =
            1.5 * c.apps[reqs.front().app_index].ipc_alone();
        const QosPlan plan = qos_allocate(c.apps, reqs, c.b, c.be_scheme);
        return plan.feasible ? "plan feasible despite unreachable target"
                             : std::string();
      },
      {}, nullptr, print_qos_case);
  EXPECT_TRUE(r.ok) << r.report();
  EXPECT_GE(r.cases_run, 200);
}

}  // namespace
}  // namespace bwpart::core
