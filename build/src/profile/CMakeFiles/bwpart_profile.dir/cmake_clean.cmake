file(REMOVE_RECURSE
  "CMakeFiles/bwpart_profile.dir/alone_profiler.cpp.o"
  "CMakeFiles/bwpart_profile.dir/alone_profiler.cpp.o.d"
  "CMakeFiles/bwpart_profile.dir/interference.cpp.o"
  "CMakeFiles/bwpart_profile.dir/interference.cpp.o.d"
  "libbwpart_profile.a"
  "libbwpart_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bwpart_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
