file(REMOVE_RECURSE
  "CMakeFiles/qos_guarantee.dir/qos_guarantee.cpp.o"
  "CMakeFiles/qos_guarantee.dir/qos_guarantee.cpp.o.d"
  "qos_guarantee"
  "qos_guarantee.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qos_guarantee.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
