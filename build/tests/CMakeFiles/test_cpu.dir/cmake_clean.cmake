file(REMOVE_RECURSE
  "CMakeFiles/test_cpu.dir/cpu/test_cache.cpp.o"
  "CMakeFiles/test_cpu.dir/cpu/test_cache.cpp.o.d"
  "CMakeFiles/test_cpu.dir/cpu/test_core.cpp.o"
  "CMakeFiles/test_cpu.dir/cpu/test_core.cpp.o.d"
  "CMakeFiles/test_cpu.dir/cpu/test_core_counters.cpp.o"
  "CMakeFiles/test_cpu.dir/cpu/test_core_counters.cpp.o.d"
  "CMakeFiles/test_cpu.dir/cpu/test_shared_cache.cpp.o"
  "CMakeFiles/test_cpu.dir/cpu/test_shared_cache.cpp.o.d"
  "test_cpu"
  "test_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
