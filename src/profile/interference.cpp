#include "profile/interference.hpp"

#include "common/assert.hpp"

namespace bwpart::profile {

InterferenceCounters::InterferenceCounters(std::uint32_t num_apps)
    : counters_(num_apps, 0) {
  BWPART_ASSERT(num_apps > 0, "need at least one app");
}

void InterferenceCounters::on_interference(AppId victim, Cycle cpu_cycles) {
  BWPART_ASSERT(victim < counters_.size(), "victim app out of range");
  counters_[victim] += cpu_cycles;
}

Cycle InterferenceCounters::interference_cycles(AppId app) const {
  BWPART_ASSERT(app < counters_.size(), "app out of range");
  return counters_[app];
}

void InterferenceCounters::reset() {
  for (Cycle& c : counters_) c = 0;
}

void InterferenceCounters::save_state(snap::Writer& w) const {
  w.tag("INTF");
  w.u64(counters_.size());
  for (const Cycle c : counters_) w.u64(c);
}

void InterferenceCounters::restore_state(snap::Reader& r) {
  r.expect_tag("INTF");
  snap::require(r.u64() == counters_.size(),
                "interference counter arity differs from the snapshot's");
  for (Cycle& c : counters_) c = r.u64();
}

}  // namespace bwpart::profile
