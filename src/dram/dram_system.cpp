#include "dram/dram_system.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"
#include "common/check.hpp"

namespace bwpart::dram {

DramSystem::DramSystem(const DramConfig& cfg, MapScheme scheme)
    : cfg_(cfg),
      t_(cfg.ticks()),
      map_(cfg, scheme),
      banks_(static_cast<std::size_t>(cfg.channels) * cfg.ranks *
             cfg.banks_per_rank),
      ranks_(static_cast<std::size_t>(cfg.channels) * cfg.ranks),
      chans_(cfg.channels) {
  // Stagger refresh across ranks so they do not all drain simultaneously.
  for (std::size_t i = 0; i < ranks_.size(); ++i) {
    ranks_[i].next_refresh_due =
        cfg_.enable_refresh ? t_.refi * (i + 1) / ranks_.size() + 1
                            : static_cast<Tick>(-1);
  }
  // Power-down idle threshold, in bus ticks (rounded up).
  const double tick_ns = 1e9 / static_cast<double>(cfg_.bus_clock.hz);
  pd_threshold_ =
      static_cast<Tick>(std::ceil(cfg_.powerdown_idle_ns / tick_ns));
  stats_.channels = cfg_.channels;
  stats_.channel_busy_ticks.assign(cfg_.channels, 0);
  if constexpr (check::kEnabled) {
    checker_ = std::make_unique<ProtocolChecker>(cfg_);
  }
}

Bank& DramSystem::bank_at(const Location& loc) {
  const std::size_t idx =
      (static_cast<std::size_t>(loc.channel) * cfg_.ranks + loc.rank) *
          cfg_.banks_per_rank +
      loc.bank;
  BWPART_ASSERT(idx < banks_.size(), "bank index out of range");
  return banks_[idx];
}

const Bank& DramSystem::bank_at(const Location& loc) const {
  return const_cast<DramSystem*>(this)->bank_at(loc);
}

DramSystem::RankState& DramSystem::rank_at(std::uint32_t channel,
                                           std::uint32_t rank) {
  const std::size_t idx =
      static_cast<std::size_t>(channel) * cfg_.ranks + rank;
  BWPART_ASSERT(idx < ranks_.size(), "rank index out of range");
  return ranks_[idx];
}

const DramSystem::RankState& DramSystem::rank_at(std::uint32_t channel,
                                                 std::uint32_t rank) const {
  return const_cast<DramSystem*>(this)->rank_at(channel, rank);
}

void DramSystem::tick(Tick now) {
  BWPART_ASSERT(!ticked_ || now == last_tick_ + 1,
                "DramSystem::tick must advance one tick at a time");
  last_tick_ = now;
  ticked_ = true;
  ++stats_.ticks;
  if (!cfg_.enable_refresh && !cfg_.enable_powerdown) return;
  for (std::uint32_t ch = 0; ch < cfg_.channels; ++ch) {
    for (std::uint32_t rk = 0; rk < cfg_.ranks; ++rk) {
      RankState& r = rank_at(ch, rk);
      if (cfg_.enable_refresh) {
        if (!r.refresh_pending && now >= r.next_refresh_due) {
          r.refresh_pending = true;  // blocks new activates to this rank
        }
        if (r.refresh_pending) try_refresh(ch, rk, now);
      }
      if (cfg_.enable_powerdown) update_powerdown(r, ch, rk, now);
    }
  }
}

Tick DramSystem::next_event_tick(
    Tick from, std::span<const std::uint32_t> rank_pending) const {
  if (!cfg_.enable_refresh && !cfg_.enable_powerdown) return kNoTick;
  BWPART_ASSERT(rank_pending.size() == ranks_.size(),
                "rank_pending span has wrong size");
  Tick best = kNoTick;
  for (std::uint32_t ch = 0; ch < cfg_.channels; ++ch) {
    for (std::uint32_t rk = 0; rk < cfg_.ranks; ++rk) {
      const RankState& r = rank_at(ch, rk);
      const bool pending =
          rank_pending[static_cast<std::size_t>(ch) * cfg_.ranks + rk] > 0;
      if (cfg_.enable_refresh) {
        if (!r.refresh_pending) {
          best = std::min(best, std::max(r.next_refresh_due, from));
        } else {
          // Drain in progress: the next step is either a still-open bank
          // becoming closable or, with all banks closed, the recovery
          // windows expiring so the refresh fires.
          bool any_open = false;
          Tick recover = from;
          for (std::uint32_t b = 0; b < cfg_.banks_per_rank; ++b) {
            const Location loc{ch, rk, b, 0, 0};
            const Bank& bank = bank_at(loc);
            if (bank.row_open()) {
              any_open = true;
              best = std::min(best, std::max(bank.next_precharge_tick(), from));
            } else {
              recover = std::max(recover, bank.next_activate_tick());
            }
          }
          if (!any_open) best = std::min(best, recover);
        }
      }
      if (cfg_.enable_powerdown) {
        if (r.pd) {
          if (r.waking) {
            best = std::min(best, std::max(r.wake_ready, from));
          } else if (pending) {
            // The controller's per-tick notify starts the wake-up; it must
            // run, so the very next tick is an event.
            best = std::min(best, from);
          }
        } else if (pending && pd_threshold_ <= 1) {
          // Degenerate threshold: even a rank notified every tick can slip
          // into power-down between notifies. Give up skipping.
          best = std::min(best, from);
        } else if (!pending && !r.refresh_pending) {
          // Idle rank: power-down entry once every bank is closed and
          // recovered and the idle threshold has elapsed. Banks cannot
          // close without commands, so an open bank means no entry while
          // the state stays frozen.
          bool any_open = false;
          Tick entry = r.last_activity + pd_threshold_;
          for (std::uint32_t b = 0; b < cfg_.banks_per_rank; ++b) {
            const Location loc{ch, rk, b, 0, 0};
            const Bank& bank = bank_at(loc);
            if (bank.row_open()) {
              any_open = true;
              break;
            }
            entry = std::max(entry, bank.next_activate_tick());
          }
          if (!any_open) best = std::min(best, std::max(entry, from));
        }
      }
    }
  }
  return best;
}

Tick DramSystem::bus_ready_tick(const ChannelState& ch, Tick lat,
                                std::uint32_t rank) const {
  const Tick gap = ch.bus_has_last && ch.bus_last_rank != rank ? t_.rtrs : 0;
  const Tick need = ch.bus_free_at + gap;
  return need > lat ? need - lat : 0;
}

Tick DramSystem::earliest_issue_tick(const Command& cmd, Tick from) const {
  const Location& loc = cmd.loc;
  const Bank& bank = bank_at(loc);
  const RankState& rank = rank_at(loc.channel, loc.rank);
  const ChannelState& chan = chans_[loc.channel];
  if (rank.pd) return kNoTick;  // wake is an event, not a timing expiry
  Tick e = from;
  switch (cmd.type) {
    case CommandType::Activate: {
      if (bank.row_open()) return kNoTick;
      if (rank.refresh_pending) return kNoTick;
      e = std::max(e, bank.next_activate_tick());
      if (rank.any_act) e = std::max(e, rank.last_act + t_.rrd);
      if (rank.act_count >= 4) {
        e = std::max(e, rank.act_window[rank.act_count % 4] + t_.faw);
      }
      return e;
    }
    case CommandType::Read:
    case CommandType::ReadAp: {
      if (!bank.row_open() || bank.open_row() != loc.row) return kNoTick;
      e = std::max(e, bank.next_read_tick());
      if (rank.any_col) e = std::max(e, rank.last_col + t_.ccd);
      if (rank.any_write) e = std::max(e, rank.write_data_end + t_.wtr);
      return std::max(e, bus_ready_tick(chan, t_.cl, loc.rank));
    }
    case CommandType::Write:
    case CommandType::WriteAp: {
      if (!bank.row_open() || bank.open_row() != loc.row) return kNoTick;
      e = std::max(e, bank.next_write_tick());
      if (rank.any_col) e = std::max(e, rank.last_col + t_.ccd);
      return std::max(e, bus_ready_tick(chan, t_.cwl, loc.rank));
    }
    case CommandType::Precharge: {
      if (!bank.row_open()) return kNoTick;
      return std::max(e, bank.next_precharge_tick());
    }
    case CommandType::Refresh:
      return kNoTick;  // internal to tick()
  }
  return kNoTick;
}

void DramSystem::skip_ticks(Tick from, Tick to,
                            std::span<const std::uint32_t> rank_pending) {
  BWPART_ASSERT(to > from, "empty skip range");
  BWPART_ASSERT(!ticked_ || from == last_tick_ + 1,
                "skip_ticks must continue the tick sequence");
  BWPART_ASSERT(rank_pending.size() == ranks_.size(),
                "rank_pending span has wrong size");
  const std::uint64_t n = to - from;
  stats_.ticks += n;
  if (cfg_.enable_powerdown) {
    for (std::size_t i = 0; i < ranks_.size(); ++i) {
      RankState& r = ranks_[i];
      if (r.pd) stats_.powerdown_rank_ticks += n;
      // Per-tick notify_rank_pending calls would have pinned last_activity
      // to each tick in the range; pin it to the last one.
      if (rank_pending[i] > 0) {
        r.last_activity = std::max(r.last_activity, to - 1);
      }
    }
  }
  last_tick_ = to - 1;
  ticked_ = true;
}

void DramSystem::update_powerdown(RankState& r, std::uint32_t channel,
                                  std::uint32_t rank, Tick now) {
  if (r.pd) {
    ++stats_.powerdown_rank_ticks;
    if (r.waking && now >= r.wake_ready) {
      r.pd = false;
      r.waking = false;
      r.last_activity = now;
    }
    return;
  }
  if (r.refresh_pending) return;
  if (now < r.last_activity + pd_threshold_) return;
  // Enter precharge power-down only with every bank closed and recovered.
  for (std::uint32_t b = 0; b < cfg_.banks_per_rank; ++b) {
    const Location loc{channel, rank, b, 0, 0};
    const Bank& bank = bank_at(loc);
    if (bank.row_open() || now < bank.next_activate_tick()) return;
  }
  r.pd = true;
  r.waking = false;
}

void DramSystem::notify_rank_pending(std::uint32_t channel,
                                     std::uint32_t rank, Tick now) {
  if (!cfg_.enable_powerdown) return;
  RankState& r = rank_at(channel, rank);
  if (r.pd && !r.waking) {
    r.waking = true;
    r.wake_ready = now + t_.xp;
  }
  // A rank with pending work never *enters* power-down this tick.
  r.last_activity = std::max(r.last_activity, now);
}

bool DramSystem::powered_down(std::uint32_t channel,
                              std::uint32_t rank) const {
  return rank_at(channel, rank).pd;
}

void DramSystem::try_refresh(std::uint32_t channel, std::uint32_t rank,
                             Tick now) {
  RankState& r = rank_at(channel, rank);
  // Close any open bank as soon as its tRAS/tRTP/tWR constraints allow.
  // (Hardware would issue PRECHARGE-ALL; we fold it into the engine.)
  bool all_closed = true;
  for (std::uint32_t b = 0; b < cfg_.banks_per_rank; ++b) {
    Location loc{channel, rank, b, 0, 0};
    Bank& bank = bank_at(loc);
    if (bank.row_open()) {
      if (bank.can_precharge(now)) {
        if (checker_) {
          const Location pre_loc{channel, rank, b, bank.open_row(), 0};
          checker_->observe({CommandType::Precharge, pre_loc, kNoApp, 0},
                            now);
        }
        bank.precharge(now, t_);
        ++stats_.precharges;
      } else {
        all_closed = false;
      }
    }
  }
  if (!all_closed) return;
  // All banks must also be past their precharge-recovery windows.
  for (std::uint32_t b = 0; b < cfg_.banks_per_rank; ++b) {
    Location loc{channel, rank, b, 0, 0};
    if (now < bank_at(loc).next_activate_tick()) return;
  }
  if (checker_) checker_->observe_refresh(channel, rank, now);
  for (std::uint32_t b = 0; b < cfg_.banks_per_rank; ++b) {
    Location loc{channel, rank, b, 0, 0};
    bank_at(loc).refresh(now, t_);
  }
  ++stats_.refreshes;
  r.refresh_pending = false;
  r.next_refresh_due += t_.refi;
}

bool DramSystem::is_row_hit(const Location& loc) const {
  const Bank& b = bank_at(loc);
  return b.row_open() && b.open_row() == loc.row;
}

bool DramSystem::is_row_open(const Location& loc) const {
  return bank_at(loc).row_open();
}

CommandType DramSystem::required_command(const Location& loc,
                                         AccessType type) const {
  const Bank& b = bank_at(loc);
  if (b.row_open()) {
    if (b.open_row() != loc.row) return CommandType::Precharge;
    const bool auto_pre = cfg_.page_policy == PagePolicy::Close;
    if (type == AccessType::Read) {
      return auto_pre ? CommandType::ReadAp : CommandType::Read;
    }
    return auto_pre ? CommandType::WriteAp : CommandType::Write;
  }
  return CommandType::Activate;
}

bool DramSystem::rank_allows_activate(const RankState& r, Tick now) const {
  if (r.refresh_pending) return false;
  if (r.any_act && now < r.last_act + t_.rrd) return false;
  if (r.act_count >= 4) {
    const Tick fourth_back = r.act_window[r.act_count % 4];
    if (now < fourth_back + t_.faw) return false;
  }
  return true;
}

bool DramSystem::bus_allows(const ChannelState& ch, Tick data_start,
                            std::uint32_t rank) const {
  // Switching the data bus between ranks needs an extra tRTRS gap.
  const Tick gap =
      ch.bus_has_last && ch.bus_last_rank != rank ? t_.rtrs : 0;
  return data_start >= ch.bus_free_at + gap;
}

bool DramSystem::refresh_blocked(std::uint32_t channel,
                                 std::uint32_t rank) const {
  return rank_at(channel, rank).refresh_pending;
}

bool DramSystem::can_issue(const Command& cmd, Tick now) const {
  return can_issue_impl(cmd, now, /*check_bus=*/true);
}

bool DramSystem::can_issue_ignoring_bus(const Command& cmd, Tick now) const {
  return can_issue_impl(cmd, now, /*check_bus=*/false);
}

bool DramSystem::can_issue_impl(const Command& cmd, Tick now,
                                bool check_bus) const {
  const Location& loc = cmd.loc;
  const Bank& bank = bank_at(loc);
  const RankState& rank = rank_at(loc.channel, loc.rank);
  const ChannelState& chan = chans_[loc.channel];
  if (rank.pd) return false;  // powered down; wake via notify_rank_pending
  switch (cmd.type) {
    case CommandType::Activate:
      return bank.can_activate(now) && rank_allows_activate(rank, now);
    case CommandType::Read:
    case CommandType::ReadAp: {
      if (!bank.can_read(now) || bank.open_row() != loc.row) return false;
      if (rank.any_col && now < rank.last_col + t_.ccd) return false;
      if (rank.any_write && now < rank.write_data_end + t_.wtr) {
        return false;  // tWTR
      }
      return !check_bus || bus_allows(chan, now + t_.cl, loc.rank);
    }
    case CommandType::Write:
    case CommandType::WriteAp: {
      if (!bank.can_write(now) || bank.open_row() != loc.row) return false;
      if (rank.any_col && now < rank.last_col + t_.ccd) return false;
      return !check_bus || bus_allows(chan, now + t_.cwl, loc.rank);
    }
    case CommandType::Precharge:
      return bank.can_precharge(now);
    case CommandType::Refresh:
      // Refresh is driven internally by tick(); never issued externally.
      return false;
  }
  return false;
}

IssueResult DramSystem::issue(const Command& cmd, Tick now) {
  BWPART_ASSERT(can_issue(cmd, now), "issue() without can_issue()");
  if (checker_) checker_->observe(cmd, now);
  const Location& loc = cmd.loc;
  Bank& bank = bank_at(loc);
  RankState& rank = rank_at(loc.channel, loc.rank);
  ChannelState& chan = chans_[loc.channel];
  rank.last_activity = now;
  IssueResult result;
  switch (cmd.type) {
    case CommandType::Activate: {
      bank.activate(now, loc.row, t_);
      rank.act_window[rank.act_count % 4] = now;
      ++rank.act_count;
      rank.last_act = now;
      rank.any_act = true;
      ++stats_.activates;
      break;
    }
    case CommandType::Read:
    case CommandType::ReadAp: {
      bank.read(now, cmd.type == CommandType::ReadAp, t_);
      rank.last_col = now;
      rank.any_col = true;
      const Tick data_start = now + t_.cl;
      chan.bus_free_at = data_start + t_.burst;
      chan.bus_last_rank = loc.rank;
      chan.bus_has_last = true;
      stats_.data_bus_busy_ticks += t_.burst;
      stats_.channel_busy_ticks[loc.channel] += t_.burst;
      ++stats_.reads;
      result.data_finish = data_start + t_.burst;
      break;
    }
    case CommandType::Write:
    case CommandType::WriteAp: {
      bank.write(now, cmd.type == CommandType::WriteAp, t_);
      rank.last_col = now;
      rank.any_col = true;
      const Tick data_start = now + t_.cwl;
      chan.bus_free_at = data_start + t_.burst;
      chan.bus_last_rank = loc.rank;
      chan.bus_has_last = true;
      rank.write_data_end = data_start + t_.burst;
      rank.any_write = true;
      stats_.data_bus_busy_ticks += t_.burst;
      stats_.channel_busy_ticks[loc.channel] += t_.burst;
      ++stats_.writes;
      result.data_finish = data_start + t_.burst;
      break;
    }
    case CommandType::Precharge: {
      bank.precharge(now, t_);
      ++stats_.precharges;
      break;
    }
    case CommandType::Refresh:
      BWPART_ASSERT(false, "refresh is internal to DramSystem");
  }
  return result;
}

void DramSystem::save_state(snap::Writer& w) const {
  w.tag("DRAM");
  w.u64(banks_.size());
  for (const Bank& b : banks_) b.save_state(w);
  w.u64(ranks_.size());
  for (const RankState& rk : ranks_) {
    w.u64(rk.last_act);
    w.b(rk.any_act);
    for (const Tick t : rk.act_window) w.u64(t);
    w.u32(rk.act_count);
    w.u64(rk.last_col);
    w.b(rk.any_col);
    w.u64(rk.write_data_end);
    w.b(rk.any_write);
    w.u64(rk.next_refresh_due);
    w.b(rk.refresh_pending);
    w.u64(rk.last_activity);
    w.b(rk.pd);
    w.b(rk.waking);
    w.u64(rk.wake_ready);
  }
  w.u64(chans_.size());
  for (const ChannelState& ch : chans_) {
    w.u64(ch.bus_free_at);
    w.u32(ch.bus_last_rank);
    w.b(ch.bus_has_last);
  }
  w.u64(stats_.activates);
  w.u64(stats_.reads);
  w.u64(stats_.writes);
  w.u64(stats_.precharges);
  w.u64(stats_.refreshes);
  w.u64(stats_.data_bus_busy_ticks);
  w.u64(stats_.ticks);
  w.u64(stats_.powerdown_rank_ticks);
  w.u32(stats_.channels);
  w.u64(stats_.channel_busy_ticks.size());
  for (const std::uint64_t t : stats_.channel_busy_ticks) w.u64(t);
  w.u64(last_tick_);
  w.b(ticked_);
  // Optional shadow-checker section, length-prefixed so a checker-less
  // build (BWPART_CHECK=OFF) can skip it wholesale.
  w.b(checker_ != nullptr);
  if (checker_ != nullptr) {
    snap::Writer sub;
    checker_->save_state(sub);
    w.u64(sub.bytes().size());
    for (const std::uint8_t byte : sub.bytes()) w.u8(byte);
  }
}

void DramSystem::restore_state(snap::Reader& r) {
  r.expect_tag("DRAM");
  snap::require(r.u64() == banks_.size(),
                "DRAM bank count differs from the snapshot's");
  for (Bank& b : banks_) b.restore_state(r);
  snap::require(r.u64() == ranks_.size(),
                "DRAM rank count differs from the snapshot's");
  for (RankState& rk : ranks_) {
    rk.last_act = r.u64();
    rk.any_act = r.b();
    for (Tick& t : rk.act_window) t = r.u64();
    rk.act_count = r.u32();
    rk.last_col = r.u64();
    rk.any_col = r.b();
    rk.write_data_end = r.u64();
    rk.any_write = r.b();
    rk.next_refresh_due = r.u64();
    rk.refresh_pending = r.b();
    rk.last_activity = r.u64();
    rk.pd = r.b();
    rk.waking = r.b();
    rk.wake_ready = r.u64();
  }
  snap::require(r.u64() == chans_.size(),
                "DRAM channel count differs from the snapshot's");
  for (ChannelState& ch : chans_) {
    ch.bus_free_at = r.u64();
    ch.bus_last_rank = r.u32();
    ch.bus_has_last = r.b();
  }
  stats_.activates = r.u64();
  stats_.reads = r.u64();
  stats_.writes = r.u64();
  stats_.precharges = r.u64();
  stats_.refreshes = r.u64();
  stats_.data_bus_busy_ticks = r.u64();
  stats_.ticks = r.u64();
  stats_.powerdown_rank_ticks = r.u64();
  stats_.channels = r.u32();
  snap::require(r.u64() == stats_.channel_busy_ticks.size(),
                "per-channel stats arity differs from the snapshot's");
  for (std::uint64_t& t : stats_.channel_busy_ticks) t = r.u64();
  last_tick_ = r.u64();
  ticked_ = r.b();
  const bool snap_has_checker = r.b();
  if (snap_has_checker) {
    const std::uint64_t len = r.u64();
    if (checker_ != nullptr) {
      const std::size_t before = r.position();
      checker_->restore_state(r);
      snap::require(r.position() - before == len,
                    "protocol-checker section length mismatch");
    } else {
      r.skip(len);  // this build validates nothing; drop the shadow state
    }
  } else {
    snap::require(checker_ == nullptr,
                  "snapshot lacks the protocol-checker state this "
                  "BWPART_CHECK build needs (was it written by a "
                  "BWPART_CHECK=OFF build?)");
  }
}

}  // namespace bwpart::dram
